#ifndef GENBASE_ENGINE_R_ENGINE_H_
#define GENBASE_ENGINE_R_ENGINE_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "engine/engine_util.h"

namespace genbase::engine {

/// \brief Configuration 1: "Vanilla R" (paper Section 4.1).
///
/// Models R 3.0.x: everything main-memory resident in data-frame-like
/// columnar structures, a hard 2^31 - 1 cells-per-array limit, strictly
/// single-threaded execution ("runs single threaded on one core, regardless
/// of the number of CPUs"), a hash-join `merge`, and BLAS/LAPACK-quality
/// (tuned) analytics kernels. R's copy-on-modify value semantics are
/// reproduced by materializing a fresh copy of the analysis matrix before
/// the model step, which together with the memory budget makes the large
/// dataset fail exactly the way the paper reports ("R by itself cannot load
/// the data into memory").
class VanillaREngine : public core::Engine {
 public:
  VanillaREngine();

  std::string name() const override { return "Vanilla R"; }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 public:
  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

  const MemoryTracker& memory() const { return tracker_; }

 private:
  MemoryTracker tracker_;
  std::unique_ptr<ColumnarTables> tables_;
};

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_R_ENGINE_H_
