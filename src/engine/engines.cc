#include "engine/engines.h"

#include "engine/columnstore_engine.h"
#include "engine/hadoop_engine.h"
#include "engine/postgres_engine.h"
#include "engine/r_engine.h"
#include "engine/scidb_engine.h"

namespace genbase::engine {

std::unique_ptr<core::Engine> CreateVanillaR() {
  return std::make_unique<VanillaREngine>();
}
std::unique_ptr<core::Engine> CreatePostgresMadlib() {
  return std::make_unique<PostgresEngine>(PostgresAnalytics::kMadlib);
}
std::unique_ptr<core::Engine> CreatePostgresR() {
  return std::make_unique<PostgresEngine>(PostgresAnalytics::kExternalR);
}
std::unique_ptr<core::Engine> CreateColumnStoreR() {
  return std::make_unique<ColumnStoreEngine>(
      ColumnStoreAnalytics::kExternalR);
}
std::unique_ptr<core::Engine> CreateColumnStoreUdf() {
  return std::make_unique<ColumnStoreEngine>(ColumnStoreAnalytics::kUdf);
}
std::unique_ptr<core::Engine> CreateSciDb() {
  return std::make_unique<SciDbEngine>();
}
std::unique_ptr<core::Engine> CreateHadoop() {
  return std::make_unique<HadoopEngine>();
}

std::vector<std::unique_ptr<core::Engine>> CreateSingleNodeEngines() {
  std::vector<std::unique_ptr<core::Engine>> engines;
  engines.push_back(CreateColumnStoreR());
  engines.push_back(CreateColumnStoreUdf());
  engines.push_back(CreateHadoop());
  engines.push_back(CreatePostgresMadlib());
  engines.push_back(CreatePostgresR());
  engines.push_back(CreateSciDb());
  engines.push_back(CreateVanillaR());
  return engines;
}

}  // namespace genbase::engine
