#include "engine/postgres_engine.h"

#include <algorithm>
#include <unordered_map>

#include "core/config.h"
#include "core/reference.h"
#include "relational/restructure.h"
#include "relational/row_ops.h"

namespace genbase::engine {

namespace {

using core::GeneCols;
using core::GoCols;
using core::MicroarrayCols;
using core::PatientCols;
using relational::DenseMapping;
using relational::MakeDenseMapping;
using relational::MaterializeRows;
using relational::RowFilter;
using relational::RowHashJoin;
using relational::RowOperator;
using relational::RowProject;
using relational::RowScan;
using storage::RowStore;
using storage::Value;

/// Copies neutral columnar data into a heap table via per-row appends.
genbase::Status LoadRowTable(const storage::ColumnTable& src,
                             RowStore* dst) {
  std::vector<Value> row(static_cast<size_t>(src.schema().num_fields()));
  for (int64_t r = 0; r < src.num_rows(); ++r) {
    for (int c = 0; c < src.schema().num_fields(); ++c) {
      row[static_cast<size_t>(c)] = src.Get(r, c);
    }
    GENBASE_RETURN_NOT_OK(dst->Append(row.data()));
  }
  return genbase::Status::OK();
}

/// Drains a Volcano tree of (patient_id, gene_id, expr) tuples into a dense
/// matrix: the per-tuple restructure step.
genbase::Result<linalg::Matrix> RestructureFromOperator(
    RowOperator* op, const DenseMapping& row_map, const DenseMapping& col_map,
    ExecContext* ctx) {
  GENBASE_RETURN_NOT_OK(op->Open(ctx));
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(
      linalg::Matrix m,
      linalg::Matrix::Create(row_map.size(), col_map.size(), tracker));
  std::vector<Value> row;
  for (;;) {
    GENBASE_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    const auto rit = row_map.index.find(row[0].AsInt());
    if (rit == row_map.index.end()) continue;
    const auto cit = col_map.index.find(row[1].AsInt());
    if (cit == col_map.index.end()) continue;
    m(rit->second, cit->second) = row[2].AsDouble();
  }
  return m;
}

}  // namespace

PostgresEngine::PostgresEngine(PostgresAnalytics analytics)
    : analytics_(analytics),
      tracker_(MemoryTracker::kUnlimited, "Postgres") {}

genbase::Status PostgresEngine::DoLoadDataset(const core::GenBaseData& data) {
  DoUnloadDataset();
  auto tables = std::make_unique<Tables>(&tracker_);
  tables->dims = data.dims;
  GENBASE_RETURN_NOT_OK(LoadRowTable(data.microarray, &tables->microarray));
  GENBASE_RETURN_NOT_OK(LoadRowTable(data.patients, &tables->patients));
  GENBASE_RETURN_NOT_OK(LoadRowTable(data.genes, &tables->genes));
  GENBASE_RETURN_NOT_OK(LoadRowTable(data.ontology, &tables->ontology));
  tables_ = std::move(tables);
  return genbase::Status::OK();
}

void PostgresEngine::DoUnloadDataset() {
  tables_.reset();
  tracker_.Reset();
}

void PostgresEngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  ctx->set_pool(nullptr);  // No intra-query parallelism in Postgres 9.x.
}

genbase::Result<QueryInputs> PostgresEngine::PrepareInputs(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  QueryInputs in;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  Tables& t = *tables_;

  switch (query) {
    case core::QueryId::kRegression:
    case core::QueryId::kSvd: {
      // SELECT gene_id FROM genes WHERE function < thr (collect ids).
      {
        auto scan = std::make_unique<RowScan>(&t.genes);
        RowFilter filter(
            std::move(scan),
            [thr = params.function_threshold](const std::vector<Value>& r) {
              return r[GeneCols::kFunction].AsInt() < thr;
            });
        GENBASE_RETURN_NOT_OK(filter.Open(ctx));
        std::vector<Value> row;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, filter.Next(&row));
          if (!more) break;
          in.col_ids.push_back(row[GeneCols::kGeneId].AsInt());
        }
        std::sort(in.col_ids.begin(), in.col_ids.end());
      }
      // ... JOIN microarray USING (gene_id), project, restructure.
      auto build = std::make_unique<RowProject>(
          std::make_unique<RowFilter>(
              std::make_unique<RowScan>(&t.genes),
              [thr = params.function_threshold](
                  const std::vector<Value>& r) {
                return r[GeneCols::kFunction].AsInt() < thr;
              }),
          std::vector<int>{GeneCols::kGeneId});
      auto join = std::make_unique<RowHashJoin>(
          std::move(build), std::make_unique<RowScan>(&t.microarray), 0,
          MicroarrayCols::kGeneId);
      // Join output: [gene_id(build), gene_id, patient_id, expr].
      RowProject projected(std::move(join),
                           {1 + MicroarrayCols::kPatientId,
                            1 + MicroarrayCols::kGeneId,
                            1 + MicroarrayCols::kExpr});
      // Row ids: all patients, plus the Q1 response projection.
      std::unordered_map<int64_t, double> response;
      {
        RowScan scan(&t.patients);
        GENBASE_RETURN_NOT_OK(scan.Open(ctx));
        std::vector<Value> row;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, scan.Next(&row));
          if (!more) break;
          in.row_ids.push_back(row[PatientCols::kPatientId].AsInt());
          response[row[PatientCols::kPatientId].AsInt()] =
              row[PatientCols::kDrugResponse].AsDouble();
        }
        std::sort(in.row_ids.begin(), in.row_ids.end());
      }
      const DenseMapping row_map = MakeDenseMapping(in.row_ids);
      const DenseMapping col_map = MakeDenseMapping(in.col_ids);
      GENBASE_ASSIGN_OR_RETURN(
          in.x, RestructureFromOperator(&projected, row_map, col_map, ctx));
      if (query == core::QueryId::kRegression) {
        in.y.resize(static_cast<size_t>(row_map.size()));
        for (int64_t i = 0; i < row_map.size(); ++i) {
          in.y[static_cast<size_t>(i)] =
              response[row_map.ids[static_cast<size_t>(i)]];
        }
      }
      return in;
    }
    case core::QueryId::kCovariance:
    case core::QueryId::kBiclustering: {
      relational::RowPredicate pred;
      if (query == core::QueryId::kCovariance) {
        pred = [d = params.disease_id](const std::vector<Value>& r) {
          return r[PatientCols::kDiseaseId].AsInt() == d;
        };
      } else {
        pred = [g = params.gender,
                a = params.max_age](const std::vector<Value>& r) {
          return r[PatientCols::kGender].AsInt() == g &&
                 r[PatientCols::kAge].AsInt() < a;
        };
      }
      {
        RowFilter filter(std::make_unique<RowScan>(&t.patients), pred);
        GENBASE_RETURN_NOT_OK(filter.Open(ctx));
        std::vector<Value> row;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, filter.Next(&row));
          if (!more) break;
          in.row_ids.push_back(row[PatientCols::kPatientId].AsInt());
        }
        std::sort(in.row_ids.begin(), in.row_ids.end());
      }
      {
        RowScan scan(&t.genes);
        GENBASE_RETURN_NOT_OK(scan.Open(ctx));
        std::vector<Value> row;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, scan.Next(&row));
          if (!more) break;
          in.col_ids.push_back(row[GeneCols::kGeneId].AsInt());
        }
        std::sort(in.col_ids.begin(), in.col_ids.end());
      }
      auto build = std::make_unique<RowProject>(
          std::make_unique<RowFilter>(std::make_unique<RowScan>(&t.patients),
                                      pred),
          std::vector<int>{PatientCols::kPatientId});
      auto join = std::make_unique<RowHashJoin>(
          std::move(build), std::make_unique<RowScan>(&t.microarray), 0,
          MicroarrayCols::kPatientId);
      RowProject projected(std::move(join),
                           {1 + MicroarrayCols::kPatientId,
                            1 + MicroarrayCols::kGeneId,
                            1 + MicroarrayCols::kExpr});
      const DenseMapping row_map = MakeDenseMapping(in.row_ids);
      const DenseMapping col_map = MakeDenseMapping(in.col_ids);
      GENBASE_ASSIGN_OR_RETURN(
          in.x, RestructureFromOperator(&projected, row_map, col_map, ctx));
      if (query == core::QueryId::kCovariance) {
        // Build the metadata access path by an index scan into a hash.
        auto index = std::make_shared<
            std::unordered_map<int64_t, std::pair<int64_t, int64_t>>>();
        RowScan scan(&t.genes);
        GENBASE_RETURN_NOT_OK(scan.Open(ctx));
        std::vector<Value> row;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, scan.Next(&row));
          if (!more) break;
          (*index)[row[GeneCols::kGeneId].AsInt()] = {
              row[GeneCols::kFunction].AsInt(),
              row[GeneCols::kLength].AsInt()};
        }
        in.meta = [index](int64_t gene_id, int64_t* function,
                          int64_t* length) -> genbase::Status {
          const auto it = index->find(gene_id);
          if (it == index->end()) {
            return genbase::Status::NotFound("gene " +
                                             std::to_string(gene_id));
          }
          *function = it->second.first;
          *length = it->second.second;
          return genbase::Status::OK();
        };
      }
      return in;
    }
    case core::QueryId::kStatistics: {
      const int64_t k =
          core::SampleCount(t.dims.patients, params.sample_fraction);
      auto build = std::make_unique<RowProject>(
          std::make_unique<RowFilter>(
              std::make_unique<RowScan>(&t.patients),
              [k](const std::vector<Value>& r) {
                return r[PatientCols::kPatientId].AsInt() < k;
              }),
          std::vector<int>{PatientCols::kPatientId});
      auto join = std::make_unique<RowHashJoin>(
          std::move(build), std::make_unique<RowScan>(&t.microarray), 0,
          MicroarrayCols::kPatientId);
      // Per-tuple aggregation: AVG(expr) GROUP BY gene_id.
      GENBASE_RETURN_NOT_OK(join->Open(ctx));
      std::unordered_map<int64_t, std::pair<double, int64_t>> agg;
      std::vector<Value> row;
      int64_t sample_rows = 0;
      for (;;) {
        GENBASE_ASSIGN_OR_RETURN(bool more, join->Next(&row));
        if (!more) break;
        auto& slot = agg[row[1 + MicroarrayCols::kGeneId].AsInt()];
        slot.first += row[1 + MicroarrayCols::kExpr].AsDouble();
        ++slot.second;
        ++sample_rows;
      }
      in.sample_count = std::min<int64_t>(k, t.dims.patients);
      // Scores aligned to the full gene id order.
      {
        RowScan scan(&t.genes);
        GENBASE_RETURN_NOT_OK(scan.Open(ctx));
        std::vector<Value> grow;
        std::vector<int64_t> gene_ids;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, scan.Next(&grow));
          if (!more) break;
          gene_ids.push_back(grow[GeneCols::kGeneId].AsInt());
        }
        std::sort(gene_ids.begin(), gene_ids.end());
        in.scores.resize(gene_ids.size(), 0.0);
        for (size_t i = 0; i < gene_ids.size(); ++i) {
          const auto it = agg.find(gene_ids[i]);
          if (it != agg.end() && it->second.second > 0) {
            in.scores[i] = it->second.first /
                           static_cast<double>(it->second.second);
          }
        }
      }
      // Memberships by tuple-at-a-time scan of the ontology table.
      in.memberships.assign(static_cast<size_t>(t.dims.go_terms), {});
      {
        RowScan scan(&t.ontology);
        GENBASE_RETURN_NOT_OK(scan.Open(ctx));
        std::vector<Value> orow;
        for (;;) {
          GENBASE_ASSIGN_OR_RETURN(bool more, scan.Next(&orow));
          if (!more) break;
          if (orow[GoCols::kBelongs].AsInt() == 0) continue;
          in.memberships[static_cast<size_t>(orow[GoCols::kGoId].AsInt())]
              .push_back(orow[GoCols::kGeneId].AsInt());
        }
        for (auto& m : in.memberships) {
          std::sort(m.begin(), m.end());
          m.erase(std::unique(m.begin(), m.end()), m.end());
        }
      }
      return in;
    }
  }
  return genbase::Status::InvalidArgument("unknown query");
}

genbase::Result<core::QueryResult> PostgresEngine::RunQuery(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  if (tables_ == nullptr) return genbase::Status::Internal("not loaded");
  if (!SupportsQuery(query)) {
    return genbase::Status::NotSupported("Madlib lacks biclustering");
  }
  GENBASE_ASSIGN_OR_RETURN(QueryInputs inputs,
                           PrepareInputs(query, params, ctx));

  if (analytics_ == PostgresAnalytics::kExternalR) {
    // Export everything R consumes through the CSV glue.
    ScopedPhase glue(ctx, Phase::kGlue);
    if (inputs.x.size() > 0) {
      GENBASE_ASSIGN_OR_RETURN(
          inputs.x, CsvRoundTripMatrix(linalg::MatrixView(inputs.x), ctx));
    }
    if (!inputs.y.empty()) {
      GENBASE_ASSIGN_OR_RETURN(inputs.y, CsvRoundTripVector(inputs.y, ctx));
    }
    if (!inputs.scores.empty()) {
      GENBASE_ASSIGN_OR_RETURN(inputs.scores,
                               CsvRoundTripVector(inputs.scores, ctx));
    }
  }

  const auto& config = core::SimConfig::Get();
  switch (analytics_) {
    case PostgresAnalytics::kExternalR:
      // R: tuned LAPACK-backed kernels, single threaded.
      return RunStandardAnalytics(query, std::move(inputs), params,
                                  linalg::KernelQuality::kTuned, ctx);
    case PostgresAnalytics::kMadlib: {
      if (query == core::QueryId::kRegression ||
          query == core::QueryId::kCovariance) {
        // Native C++ Madlib modules.
        return RunStandardAnalytics(query, std::move(inputs), params,
                                    linalg::KernelQuality::kTuned, ctx);
      }
      // SVD / statistics "in effect simulate matrix computations in SQL and
      // plpython": naive kernels plus a per-cell interpreter surcharge.
      const int64_t m = inputs.x.rows();
      const int64_t n = inputs.x.cols();
      const int64_t stat_cells =
          static_cast<int64_t>(inputs.scores.size()) *
          static_cast<int64_t>(inputs.memberships.size());
      GENBASE_ASSIGN_OR_RETURN(
          core::QueryResult result,
          RunStandardAnalytics(query, std::move(inputs), params,
                               linalg::KernelQuality::kNaive, ctx));
      if (query == core::QueryId::kSvd) {
        const double cells = 2.0 * static_cast<double>(m) *
                             static_cast<double>(n) *
                             static_cast<double>(result.svd.iterations);
        ctx->clock().AddVirtual(Phase::kAnalytics,
                                cells * config.interpreted_cell_overhead_s);
      } else if (query == core::QueryId::kStatistics) {
        ctx->clock().AddVirtual(Phase::kAnalytics,
                                static_cast<double>(stat_cells) *
                                    config.interpreted_cell_overhead_s *
                                    100.0);
      }
      return result;
    }
  }
  return genbase::Status::InvalidArgument("unknown analytics mode");
}

}  // namespace genbase::engine
