#include "engine/columnstore_engine.h"

#include "core/config.h"

namespace genbase::engine {

ColumnStoreEngine::ColumnStoreEngine(ColumnStoreAnalytics analytics)
    : analytics_(analytics),
      tracker_(MemoryTracker::kUnlimited, "ColumnStore") {}

genbase::Status ColumnStoreEngine::DoLoadDataset(
    const core::GenBaseData& data) {
  DoUnloadDataset();
  auto tables = std::make_unique<ColumnarTables>();
  GENBASE_RETURN_NOT_OK(LoadColumnarTables(data, &tracker_, tables.get()));
  tables_ = std::move(tables);
  return genbase::Status::OK();
}

void ColumnStoreEngine::DoUnloadDataset() {
  tables_.reset();
  tracker_.Reset();
}

void ColumnStoreEngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  // DM is vectorized but the analytics run in (single-threaded) R, either
  // external or in-process; the pool is not used by the R kernels.
  ctx->set_pool(nullptr);
}

genbase::Result<core::QueryResult> ColumnStoreEngine::RunQuery(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  if (tables_ == nullptr) return genbase::Status::Internal("not loaded");
  GENBASE_ASSIGN_OR_RETURN(QueryInputs inputs,
                           PrepareInputsColumnar(*tables_, query, params,
                                                 ctx));
  const auto& config = core::SimConfig::Get();

  if (analytics_ == ColumnStoreAnalytics::kExternalR) {
    ScopedPhase glue(ctx, Phase::kGlue);
    if (inputs.x.size() > 0) {
      GENBASE_ASSIGN_OR_RETURN(
          inputs.x, CsvRoundTripMatrix(linalg::MatrixView(inputs.x), ctx));
    }
    if (!inputs.y.empty()) {
      GENBASE_ASSIGN_OR_RETURN(inputs.y, CsvRoundTripVector(inputs.y, ctx));
    }
    if (!inputs.scores.empty()) {
      GENBASE_ASSIGN_OR_RETURN(inputs.scores,
                               CsvRoundTripVector(inputs.scores, ctx));
    }
    return RunStandardAnalytics(query, std::move(inputs), params,
                                linalg::KernelQuality::kTuned, ctx);
  }

  // UDF mode: in-process transfer (chunked, per-invocation overhead), then
  // R kernels in-database. Iterative algorithms re-enter the UDF interface
  // per pass — the pass hook charges that.
  if (inputs.x.size() > 0) {
    ScopedPhase glue(ctx, Phase::kGlue);
    GENBASE_ASSIGN_OR_RETURN(
        inputs.x,
        UdfTransferMatrix(linalg::MatrixView(inputs.x), ctx,
                          /*chunk_rows=*/512));
  }
  if (!inputs.scores.empty() && ctx != nullptr) {
    ctx->clock().AddVirtual(Phase::kGlue, config.udf_invocation_overhead_s);
  }
  std::function<genbase::Status()> pass_hook;
  if (ctx != nullptr) {
    pass_hook = [ctx, &config]() -> genbase::Status {
      ctx->clock().AddVirtual(Phase::kGlue,
                              config.udf_invocation_overhead_s);
      return genbase::Status::OK();
    };
  }
  return RunStandardAnalytics(query, std::move(inputs), params,
                              linalg::KernelQuality::kTuned, ctx,
                              std::move(pass_hook));
}

}  // namespace genbase::engine
