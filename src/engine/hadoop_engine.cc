#include "engine/hadoop_engine.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "core/config.h"
#include "relational/restructure.h"

namespace genbase::engine {

namespace {

using core::GeneCols;
using core::MicroarrayCols;
using core::PatientCols;
using relational::DenseMapping;
using relational::MakeDenseMapping;

constexpr int64_t kIoChunkRows = 64 * 1024;

/// One binary microarray record on "HDFS".
struct TripleRec {
  int64_t patient_id;
  int64_t gene_id;
  double expr;
};

void ChargeJobStartup(ExecContext* ctx, Phase phase) {
  if (ctx != nullptr) {
    ctx->clock().AddVirtual(phase,
                            core::SimConfig::Get().mr_job_startup_s);
  }
}

}  // namespace

HadoopEngine::HadoopEngine()
    : tracker_(MemoryTracker::kUnlimited, "Hadoop") {}

genbase::Status HadoopEngine::DoLoadDataset(const core::GenBaseData& data) {
  DoUnloadDataset();
  auto hdfs = std::make_unique<Hdfs>();
  hdfs->dims = data.dims;

  {
    GENBASE_ASSIGN_OR_RETURN(hdfs->microarray, SpillFile::Create());
    const auto& pid = data.microarray.IntColumn(MicroarrayCols::kPatientId);
    const auto& gid = data.microarray.IntColumn(MicroarrayCols::kGeneId);
    const auto& expr = data.microarray.DoubleColumn(MicroarrayCols::kExpr);
    std::vector<TripleRec> buf;
    buf.reserve(kIoChunkRows);
    for (size_t i = 0; i < pid.size(); ++i) {
      buf.push_back({pid[i], gid[i], expr[i]});
      if (static_cast<int64_t>(buf.size()) == kIoChunkRows) {
        GENBASE_RETURN_NOT_OK(hdfs->microarray.Write(
            buf.data(), static_cast<int64_t>(buf.size() * sizeof(TripleRec))));
        buf.clear();
      }
    }
    if (!buf.empty()) {
      GENBASE_RETURN_NOT_OK(hdfs->microarray.Write(
          buf.data(), static_cast<int64_t>(buf.size() * sizeof(TripleRec))));
    }
    hdfs->microarray_rows = static_cast<int64_t>(pid.size());
    GENBASE_RETURN_NOT_OK(hdfs->microarray.FinishWrite());
  }
  {
    GENBASE_ASSIGN_OR_RETURN(hdfs->patients, SpillFile::Create());
    const int nf = data.patients.schema().num_fields();
    std::vector<double> row(static_cast<size_t>(nf));
    for (int64_t r = 0; r < data.patients.num_rows(); ++r) {
      for (int c = 0; c < nf; ++c) {
        row[static_cast<size_t>(c)] = data.patients.Get(r, c).ToDouble();
      }
      GENBASE_RETURN_NOT_OK(
          hdfs->patients.WriteDoubles(row.data(), nf));
    }
    hdfs->patient_rows = data.patients.num_rows();
    GENBASE_RETURN_NOT_OK(hdfs->patients.FinishWrite());
  }
  {
    GENBASE_ASSIGN_OR_RETURN(hdfs->genes, SpillFile::Create());
    const int nf = data.genes.schema().num_fields();
    std::vector<int64_t> row(static_cast<size_t>(nf));
    for (int64_t r = 0; r < data.genes.num_rows(); ++r) {
      for (int c = 0; c < nf; ++c) {
        row[static_cast<size_t>(c)] = data.genes.Get(r, c).AsInt();
      }
      GENBASE_RETURN_NOT_OK(hdfs->genes.WriteInts(row.data(), nf));
    }
    hdfs->gene_rows = data.genes.num_rows();
    GENBASE_RETURN_NOT_OK(hdfs->genes.FinishWrite());
  }
  hdfs_ = std::move(hdfs);
  return genbase::Status::OK();
}

void HadoopEngine::DoUnloadDataset() {
  hdfs_.reset();
  tracker_.Reset();
}

void HadoopEngine::PrepareContext(ExecContext* ctx) {
  ctx->set_memory(&tracker_);
  ctx->set_pool(nullptr);  // Mahout kernels: no shared-memory parallelism.
}

genbase::Result<SpillFile> HadoopEngine::HiveFilterJoin(
    core::QueryId query, const core::QueryParams& params,
    std::vector<int64_t>* row_ids, std::vector<int64_t>* col_ids,
    std::vector<double>* y, int64_t* matched_rows, ExecContext* ctx) {
  Hdfs& h = *hdfs_;
  ScopedPhase dm(ctx, Phase::kDataManagement);

  // Job 1: scan the dimension table, apply the filter ("Hive has only
  // rudimentary query optimization" — but a broadcast join of a small
  // dimension table is standard).
  ChargeJobStartup(ctx, Phase::kDataManagement);
  std::unordered_set<int64_t> filter_ids;
  const bool gene_side = query == core::QueryId::kRegression ||
                         query == core::QueryId::kSvd;
  if (gene_side) {
    GENBASE_RETURN_NOT_OK(h.genes.Rewind());
    std::vector<int64_t> row(5);
    for (int64_t r = 0; r < h.gene_rows; ++r) {
      GENBASE_RETURN_NOT_OK(h.genes.ReadInts(row.data(), 5));
      if (row[GeneCols::kFunction] < params.function_threshold) {
        filter_ids.insert(row[GeneCols::kGeneId]);
        col_ids->push_back(row[GeneCols::kGeneId]);
      }
    }
    std::sort(col_ids->begin(), col_ids->end());
    GENBASE_RETURN_NOT_OK(h.patients.Rewind());
    std::vector<double> prow(6);
    for (int64_t r = 0; r < h.patient_rows; ++r) {
      GENBASE_RETURN_NOT_OK(h.patients.ReadDoubles(prow.data(), 6));
      row_ids->push_back(
          static_cast<int64_t>(prow[PatientCols::kPatientId]));
      if (y != nullptr) y->push_back(prow[PatientCols::kDrugResponse]);
    }
  } else {
    GENBASE_RETURN_NOT_OK(h.patients.Rewind());
    std::vector<double> prow(6);
    for (int64_t r = 0; r < h.patient_rows; ++r) {
      GENBASE_RETURN_NOT_OK(h.patients.ReadDoubles(prow.data(), 6));
      if (static_cast<int64_t>(prow[PatientCols::kDiseaseId]) ==
          params.disease_id) {
        const int64_t pid =
            static_cast<int64_t>(prow[PatientCols::kPatientId]);
        filter_ids.insert(pid);
        row_ids->push_back(pid);
      }
    }
    std::sort(row_ids->begin(), row_ids->end());
    GENBASE_RETURN_NOT_OK(h.genes.Rewind());
    std::vector<int64_t> grow(5);
    for (int64_t r = 0; r < h.gene_rows; ++r) {
      GENBASE_RETURN_NOT_OK(h.genes.ReadInts(grow.data(), 5));
      col_ids->push_back(grow[GeneCols::kGeneId]);
    }
    std::sort(col_ids->begin(), col_ids->end());
  }

  // Job 2: map over the fact file, join against the broadcast filter, and
  // materialize matched triples back to disk (the reduce output).
  ChargeJobStartup(ctx, Phase::kDataManagement);
  GENBASE_ASSIGN_OR_RETURN(SpillFile matched, SpillFile::Create());
  GENBASE_RETURN_NOT_OK(h.microarray.Rewind());
  *matched_rows = 0;
  std::vector<TripleRec> in_buf(kIoChunkRows);
  std::vector<TripleRec> out_buf;
  out_buf.reserve(kIoChunkRows);
  int64_t remaining = h.microarray_rows;
  while (remaining > 0) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    const int64_t n = std::min<int64_t>(remaining, kIoChunkRows);
    GENBASE_RETURN_NOT_OK(h.microarray.Read(
        in_buf.data(), n * static_cast<int64_t>(sizeof(TripleRec))));
    for (int64_t i = 0; i < n; ++i) {
      const int64_t key =
          gene_side ? in_buf[i].gene_id : in_buf[i].patient_id;
      if (filter_ids.count(key) == 0) continue;
      out_buf.push_back(in_buf[static_cast<size_t>(i)]);
      ++*matched_rows;
      if (static_cast<int64_t>(out_buf.size()) == kIoChunkRows) {
        GENBASE_RETURN_NOT_OK(matched.Write(
            out_buf.data(),
            static_cast<int64_t>(out_buf.size() * sizeof(TripleRec))));
        out_buf.clear();
      }
    }
    remaining -= n;
  }
  if (!out_buf.empty()) {
    GENBASE_RETURN_NOT_OK(matched.Write(
        out_buf.data(),
        static_cast<int64_t>(out_buf.size() * sizeof(TripleRec))));
  }
  GENBASE_RETURN_NOT_OK(matched.FinishWrite());
  return matched;
}

genbase::Result<core::QueryResult> HadoopEngine::RunQuery(
    core::QueryId query, const core::QueryParams& params, ExecContext* ctx) {
  if (hdfs_ == nullptr) return genbase::Status::Internal("not loaded");
  if (!SupportsQuery(query)) {
    return genbase::Status::NotSupported(
        "Mahout lacks this analytics function");
  }
  const auto& config = core::SimConfig::Get();
  QueryInputs inputs;
  int64_t matched_rows = 0;
  GENBASE_ASSIGN_OR_RETURN(
      SpillFile matched,
      HiveFilterJoin(query, params, &inputs.row_ids, &inputs.col_ids,
                     query == core::QueryId::kRegression ? &inputs.y
                                                         : nullptr,
                     &matched_rows, ctx));

  // Job 3: restructure the matched triples into a dense matrix, then
  // materialize it for the Hive -> Mahout handoff (SequenceFile style) and
  // read it back.
  {
    ScopedPhase dm(ctx, Phase::kDataManagement);
    ChargeJobStartup(ctx, Phase::kDataManagement);
    const DenseMapping row_map = MakeDenseMapping(inputs.row_ids);
    const DenseMapping col_map = MakeDenseMapping(inputs.col_ids);
    GENBASE_ASSIGN_OR_RETURN(
        linalg::Matrix m,
        linalg::Matrix::Create(row_map.size(), col_map.size(),
                               ctx != nullptr ? ctx->memory() : nullptr));
    GENBASE_RETURN_NOT_OK(matched.Rewind());
    std::vector<TripleRec> buf(kIoChunkRows);
    int64_t remaining = matched_rows;
    while (remaining > 0) {
      const int64_t n = std::min<int64_t>(remaining, kIoChunkRows);
      GENBASE_RETURN_NOT_OK(matched.Read(
          buf.data(), n * static_cast<int64_t>(sizeof(TripleRec))));
      for (int64_t i = 0; i < n; ++i) {
        const auto rit = row_map.index.find(buf[i].patient_id);
        const auto cit = col_map.index.find(buf[i].gene_id);
        if (rit == row_map.index.end() || cit == col_map.index.end()) {
          continue;
        }
        m(rit->second, cit->second) = buf[static_cast<size_t>(i)].expr;
      }
      remaining -= n;
    }
    // Handoff materialization: write the dense matrix, read it back.
    GENBASE_ASSIGN_OR_RETURN(SpillFile handoff, SpillFile::Create());
    GENBASE_RETURN_NOT_OK(handoff.WriteDoubles(m.data(), m.size()));
    GENBASE_RETURN_NOT_OK(handoff.FinishWrite());
    GENBASE_RETURN_NOT_OK(handoff.ReadDoubles(m.data(), m.size()));
    inputs.x = std::move(m);
  }

  // Q2 needs the metadata access path for the qualifying-pair join: another
  // pass over the genes file into a broadcast hash.
  if (query == core::QueryId::kCovariance) {
    ScopedPhase dm(ctx, Phase::kDataManagement);
    ChargeJobStartup(ctx, Phase::kDataManagement);
    auto index = std::make_shared<
        std::unordered_map<int64_t, std::pair<int64_t, int64_t>>>();
    GENBASE_RETURN_NOT_OK(hdfs_->genes.Rewind());
    std::vector<int64_t> row(5);
    for (int64_t r = 0; r < hdfs_->gene_rows; ++r) {
      GENBASE_RETURN_NOT_OK(hdfs_->genes.ReadInts(row.data(), 5));
      (*index)[row[GeneCols::kGeneId]] = {row[GeneCols::kFunction],
                                          row[GeneCols::kLength]};
    }
    inputs.meta = [index](int64_t gene_id, int64_t* function,
                          int64_t* length) -> genbase::Status {
      const auto it = index->find(gene_id);
      if (it == index->end()) {
        return genbase::Status::NotFound("gene " + std::to_string(gene_id));
      }
      *function = it->second.first;
      *length = it->second.second;
      return genbase::Status::OK();
    };
  }

  // Mahout job(s): naive kernels, one job startup — plus, for Lanczos, one
  // job per iteration (Mahout's DistributedLanczosSolver).
  ChargeJobStartup(ctx, Phase::kAnalytics);
  GENBASE_ASSIGN_OR_RETURN(
      core::QueryResult result,
      RunStandardAnalytics(query, std::move(inputs), params,
                           linalg::KernelQuality::kNaive, ctx));
  if (query == core::QueryId::kSvd && ctx != nullptr) {
    ctx->clock().AddVirtual(
        Phase::kAnalytics,
        static_cast<double>(result.svd.iterations) * config.mr_job_startup_s);
  }
  return result;
}

}  // namespace genbase::engine
