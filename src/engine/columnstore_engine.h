#ifndef GENBASE_ENGINE_COLUMNSTORE_ENGINE_H_
#define GENBASE_ENGINE_COLUMNSTORE_ENGINE_H_

#include <memory>
#include <string>

#include "core/engine.h"
#include "engine/engine_util.h"

namespace genbase::engine {

enum class ColumnStoreAnalytics {
  /// Configuration 4: export the DM result to external R via CSV glue.
  kExternalR,
  /// Configuration 5: R-implemented UDFs inside the DBMS — no serialization,
  /// but every UDF invocation pays interpreter-entry overhead, which bites
  /// iterative algorithms (the paper's biclustering anomaly).
  kUdf,
};

/// \brief Configurations 4-5: a "popular column store".
///
/// Storage is one contiguous typed vector per attribute; filters and joins
/// run vectorized (tight loops over typed arrays, late materialization via
/// selection vectors). GenBase's tables are narrow and its queries touch
/// most columns, so — as the paper observes — the columnar advantage over
/// the row store is modest here.
class ColumnStoreEngine : public core::Engine {
 public:
  explicit ColumnStoreEngine(ColumnStoreAnalytics analytics);

  std::string name() const override {
    return analytics_ == ColumnStoreAnalytics::kExternalR
               ? "Column store + R"
               : "Column store + UDFs";
  }

 protected:
  genbase::Status DoLoadDataset(const core::GenBaseData& data) override;
  void DoUnloadDataset() override;

 public:
  void PrepareContext(ExecContext* ctx) override;

  genbase::Result<core::QueryResult> RunQuery(core::QueryId query,
                                              const core::QueryParams& params,
                                              ExecContext* ctx) override;

 private:
  ColumnStoreAnalytics analytics_;
  MemoryTracker tracker_;
  std::unique_ptr<ColumnarTables> tables_;
};

}  // namespace genbase::engine

#endif  // GENBASE_ENGINE_COLUMNSTORE_ENGINE_H_
