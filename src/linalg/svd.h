#ifndef GENBASE_LINALG_SVD_H_
#define GENBASE_LINALG_SVD_H_

#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/covariance.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// \brief Truncated singular value decomposition A ~= U diag(sigma) V^T.
struct SvdResult {
  std::vector<double> singular_values;  ///< Descending.
  Matrix u;                             ///< m x k left singular vectors.
  Matrix v;                             ///< n x k right singular vectors.
  int lanczos_iterations = 0;
};

struct SvdOptions {
  int rank = 50;               ///< Paper Query 4: top 50.
  double tolerance = 1e-9;
  uint64_t seed = 42;
  KernelQuality quality = KernelQuality::kTuned;
  bool reorthogonalize = true;
};

/// \brief Computes the top-k singular triplets of A via Lanczos on the
/// Gram operator v -> A^T (A v) (never formed explicitly). sigma_i =
/// sqrt(lambda_i); u_i = A v_i / sigma_i. Matches the paper's use of the
/// Lanczos power method for Query 4.
genbase::Result<SvdResult> TruncatedSvd(const MatrixView& a,
                                        const SvdOptions& options,
                                        ExecContext* ctx = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_SVD_H_
