#include "linalg/qr.h"

#include <cmath>

#include "linalg/blas.h"

namespace genbase::linalg {

// Implementation note: the factorization works on the TRANSPOSE of A
// (qrt_ is n x m; its row j is A's column j, contiguous in memory).
// Householder QR is column-oriented — reflector construction and the
// trailing update both walk columns of A — so the transposed layout turns
// every inner loop into a contiguous (vectorizable) sweep. On a 3200x1200
// factorization this is the difference between ~100 s (strided) and a few
// seconds (contiguous).

genbase::Result<HouseholderQr> HouseholderQr::Factor(Matrix a,
                                                     ExecContext* ctx) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols, got " +
                                   std::to_string(m) + " x " +
                                   std::to_string(n));
  }
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(Matrix qrt, Matrix::Create(n, m, tracker));
  for (int64_t i = 0; i < m; ++i) {
    const double* row = a.Row(i);
    for (int64_t j = 0; j < n; ++j) qrt(j, i) = row[j];
  }
  a = Matrix();  // Release the input copy early.
  return FactorPacked(std::move(qrt), m, n, ctx);
}

genbase::Result<HouseholderQr> HouseholderQr::Factor(const MatrixView& a,
                                                     ExecContext* ctx) {
  const int64_t m = a.rows;
  const int64_t n = a.cols;
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols, got " +
                                   std::to_string(m) + " x " +
                                   std::to_string(n));
  }
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(Matrix qrt, Matrix::Create(n, m, tracker));
  for (int64_t i = 0; i < m; ++i) {
    const double* row = a.data + i * a.stride;
    for (int64_t j = 0; j < n; ++j) qrt(j, i) = row[j];
  }
  return FactorPacked(std::move(qrt), m, n, ctx);
}

genbase::Result<HouseholderQr> HouseholderQr::FactorPacked(Matrix qrt,
                                                           int64_t m,
                                                           int64_t n,
                                                           ExecContext* ctx) {
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  std::vector<double> tau(static_cast<size_t>(n), 0.0);
  for (int64_t k = 0; k < n; ++k) {
    if (ctx != nullptr && (k & 15) == 0) {
      Status st = ctx->CheckBudgets();
      if (!st.ok()) return st;
    }
    double* colk = qrt.Row(k);  // A's column k, contiguous.
    // Build the Householder reflector for column k, rows k..m.
    double norm_x = 0.0;
    for (int64_t i = k; i < m; ++i) norm_x += colk[i] * colk[i];
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    const double alpha = colk[k] >= 0 ? -norm_x : norm_x;
    const double v0 = colk[k] - alpha;
    // Normalize so v(0) = 1 (stored implicitly).
    const double inv_v0 = 1.0 / v0;
    for (int64_t i = k + 1; i < m; ++i) colk[i] *= inv_v0;
    tau[k] = -v0 / alpha;  // tau = 2 / (v^T v) with v(0)=1 normalization.
    colk[k] = alpha;
    // Apply H = I - tau v v^T to the trailing columns (rows of qrt).
    // Each column's update is independent: safe to parallelize, and the
    // result is bit-identical to the serial path.
    const double tau_k = tau[k];
    auto update = [&qrt, colk, k, m, tau_k](int64_t j_lo, int64_t j_hi) {
      for (int64_t j = j_lo; j < j_hi; ++j) {
        double* colj = qrt.Row(j);
        double s = colj[k];
        for (int64_t i = k + 1; i < m; ++i) s += colk[i] * colj[i];
        s *= tau_k;
        colj[k] -= s;
        for (int64_t i = k + 1; i < m; ++i) colj[i] -= s * colk[i];
      }
    };
    const int64_t trailing = n - (k + 1);
    if (pool != nullptr && pool->num_threads() > 1 && trailing >= 64 &&
        (m - k) * trailing >= 1 << 16) {
      pool->ParallelFor(k + 1, n, update);
    } else {
      update(k + 1, n);
    }
  }
  return HouseholderQr(std::move(qrt), std::move(tau));
}

void HouseholderQr::ApplyQTranspose(double* b) const {
  const int64_t m = rows();
  const int64_t n = cols();
  for (int64_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    const double* colk = qrt_.Row(k);
    double s = b[k];
    for (int64_t i = k + 1; i < m; ++i) s += colk[i] * b[i];
    s *= tau_[k];
    b[k] -= s;
    for (int64_t i = k + 1; i < m; ++i) b[i] -= s * colk[i];
  }
}

void HouseholderQr::ApplyQ(double* b) const {
  const int64_t m = rows();
  const int64_t n = cols();
  for (int64_t k = n - 1; k >= 0; --k) {
    if (tau_[k] == 0.0) continue;
    const double* colk = qrt_.Row(k);
    double s = b[k];
    for (int64_t i = k + 1; i < m; ++i) s += colk[i] * b[i];
    s *= tau_[k];
    b[k] -= s;
    for (int64_t i = k + 1; i < m; ++i) b[i] -= s * colk[i];
  }
}

genbase::Status HouseholderQr::SolveR(const double* b, double* x) const {
  const int64_t n = cols();
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int64_t j = i + 1; j < n; ++j) s -= qrt_(j, i) * x[j];
    const double d = qrt_(i, i);
    if (std::fabs(d) < 1e-300) {
      return Status::InvalidArgument("singular R in QR solve at column " +
                                     std::to_string(i));
    }
    x[i] = s / d;
  }
  return Status::OK();
}

Matrix HouseholderQr::ThinQ() const {
  const int64_t m = rows();
  const int64_t n = cols();
  Matrix q(m, n);
  std::vector<double> e(static_cast<size_t>(m), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[static_cast<size_t>(j)] = 1.0;
    ApplyQ(e.data());
    for (int64_t i = 0; i < m; ++i) q(i, j) = e[static_cast<size_t>(i)];
  }
  return q;
}

Matrix HouseholderQr::R() const {
  const int64_t n = cols();
  Matrix r(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) r(i, j) = qrt_(j, i);
  }
  return r;
}

genbase::Result<LeastSquaresFit> LeastSquaresQr(Matrix a,
                                                const std::vector<double>& b,
                                                ExecContext* ctx) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  if (static_cast<int64_t>(b.size()) != m) {
    return Status::InvalidArgument("rhs length mismatch");
  }
  // Total sum of squares for R^2 before b is transformed.
  double mean_b = 0.0;
  for (double v : b) mean_b += v;
  mean_b /= static_cast<double>(m);
  double tss = 0.0;
  for (double v : b) tss += (v - mean_b) * (v - mean_b);

  GENBASE_ASSIGN_OR_RETURN(HouseholderQr qr,
                           HouseholderQr::Factor(std::move(a), ctx));
  std::vector<double> qtb = b;
  qr.ApplyQTranspose(qtb.data());
  LeastSquaresFit fit;
  fit.coefficients.resize(static_cast<size_t>(n));
  GENBASE_RETURN_NOT_OK(qr.SolveR(qtb.data(), fit.coefficients.data()));
  double rss = 0.0;
  for (int64_t i = n; i < m; ++i) rss += qtb[i] * qtb[i];
  fit.residual_norm = std::sqrt(rss);
  fit.r_squared = tss > 0 ? 1.0 - rss / tss : 0.0;
  return fit;
}

genbase::Result<LeastSquaresFit> LeastSquaresQr(const MatrixView& a,
                                                const std::vector<double>& b,
                                                ExecContext* ctx) {
  const int64_t m = a.rows;
  const int64_t n = a.cols;
  if (static_cast<int64_t>(b.size()) != m) {
    return Status::InvalidArgument("rhs length mismatch");
  }
  double mean_b = 0.0;
  for (double v : b) mean_b += v;
  mean_b /= static_cast<double>(m);
  double tss = 0.0;
  for (double v : b) tss += (v - mean_b) * (v - mean_b);

  GENBASE_ASSIGN_OR_RETURN(HouseholderQr qr, HouseholderQr::Factor(a, ctx));
  std::vector<double> qtb = b;
  qr.ApplyQTranspose(qtb.data());
  LeastSquaresFit fit;
  fit.coefficients.resize(static_cast<size_t>(n));
  GENBASE_RETURN_NOT_OK(qr.SolveR(qtb.data(), fit.coefficients.data()));
  double rss = 0.0;
  for (int64_t i = n; i < m; ++i) rss += qtb[i] * qtb[i];
  fit.residual_norm = std::sqrt(rss);
  fit.r_squared = tss > 0 ? 1.0 - rss / tss : 0.0;
  return fit;
}

}  // namespace genbase::linalg
