#ifndef GENBASE_LINALG_COVARIANCE_H_
#define GENBASE_LINALG_COVARIANCE_H_

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// \brief Kernel quality knob: the tuned path models BLAS/MKL-backed
/// systems, the naive path models Mahout-style hand-rolled loops.
enum class KernelQuality { kTuned, kNaive };

/// \brief Sample covariance of the columns of x (m samples, n variables):
/// C = Xc^T Xc / (m - 1) with column-centered Xc. This is GenBase Query 2's
/// analytics step (the paper's S x S^T example, with the mean subtracted).
///
/// Memory for the centered copy and the output is charged to ctx->memory().
genbase::Result<Matrix> CovarianceMatrix(const MatrixView& x,
                                         KernelQuality quality,
                                         ExecContext* ctx = nullptr);

/// \brief Column means of x, length n.
std::vector<double> ColumnMeans(const MatrixView& x);

/// \brief Column means into a caller-provided buffer of x.cols doubles
/// (externally planned storage; same accumulation order as ColumnMeans, so
/// results are bitwise identical).
void ColumnMeansInto(const MatrixView& x, double* means);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_COVARIANCE_H_
