#ifndef GENBASE_LINALG_BLAS_H_
#define GENBASE_LINALG_BLAS_H_

#include <cstdint>

#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// BLAS-1 -------------------------------------------------------------------

double Dot(const double* x, const double* y, int64_t n);
double Nrm2(const double* x, int64_t n);
void Axpy(double alpha, const double* x, double* y, int64_t n);
void Scal(double alpha, double* x, int64_t n);

/// BLAS-2 -------------------------------------------------------------------

/// y = A * x (A: m x n, x: n, y: m). Parallel over rows if pool given.
void Gemv(const MatrixView& a, const double* x, double* y,
          ThreadPool* pool = nullptr);

/// y = A^T * x (A: m x n, x: m, y: n). Parallel with partial sums.
void GemvTranspose(const MatrixView& a, const double* x, double* y,
                   ThreadPool* pool = nullptr);

/// BLAS-3 -------------------------------------------------------------------
///
/// All BLAS-3 entry points dispatch on simd::ActiveBackend(): kScalar keeps
/// the original cache-blocked loops, kSimd routes through a packed,
/// register-blocked macro-kernel (GotoBLAS-style panel packing over the
/// kernels.h micro-tiles, AVX2+FMA where the CPU has it). Both variants are
/// bitwise-deterministic across thread counts: every C element is owned by
/// one task and loop orders are fixed.

/// C = A * B with cache-blocked tiles, parallel over row blocks. This is the
/// "tuned linear algebra package" path (stands in for BLAS/MKL in the paper's
/// SciDB/Madlib-C++ configurations).
genbase::Status Gemm(const MatrixView& a, const MatrixView& b, Matrix* c,
                     ThreadPool* pool = nullptr, ExecContext* ctx = nullptr);

/// C = A^T * B, blocked and parallel.
genbase::Status GemmTransposeA(const MatrixView& a, const MatrixView& b,
                               Matrix* c, ThreadPool* pool = nullptr,
                               ExecContext* ctx = nullptr);

/// C = A^T * A exploiting symmetry (computes upper triangle, mirrors).
genbase::Status Syrk(const MatrixView& a, Matrix* c,
                     ThreadPool* pool = nullptr, ExecContext* ctx = nullptr);

/// C = (A - 1 mu^T)^T (A - 1 mu^T): Syrk of the column-centered A, with the
/// centering fused into operand packing so no centered copy of A is ever
/// materialized (only one kKc x kNc pack panel at a time). `col_means` has
/// a.cols entries. The building block behind the one-pass CovarianceMatrix.
genbase::Status SyrkCentered(const MatrixView& a, const double* col_means,
                             Matrix* c, ThreadPool* pool = nullptr,
                             ExecContext* ctx = nullptr);

/// Raw-buffer SyrkCentered: `c` points at an a.cols x a.cols row-major
/// buffer in externally planned storage (the static-plan arena). Identical
/// kernel path to the Matrix overload, so results are bitwise identical.
genbase::Status SyrkCentered(const MatrixView& a, const double* col_means,
                             double* c, ThreadPool* pool = nullptr,
                             ExecContext* ctx = nullptr);

/// Deliberately unoptimized ijk triple loop with column-strided access to B,
/// single threaded. This is the "Mahout: no sophisticated linear algebra
/// package" path the paper blames for Hadoop's analytics numbers. Kept
/// correct but slow on purpose; the ablation bench quantifies the gap.
genbase::Status GemmNaive(const MatrixView& a, const MatrixView& b, Matrix* c,
                          ExecContext* ctx = nullptr);

/// Naive C = A^T * A (no symmetry exploitation, no blocking).
genbase::Status SyrkNaive(const MatrixView& a, Matrix* c,
                          ExecContext* ctx = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_BLAS_H_
