#ifndef GENBASE_LINALG_BLAS_H_
#define GENBASE_LINALG_BLAS_H_

#include <cstdint>

#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// BLAS-1 -------------------------------------------------------------------

double Dot(const double* x, const double* y, int64_t n);
double Nrm2(const double* x, int64_t n);
void Axpy(double alpha, const double* x, double* y, int64_t n);
void Scal(double alpha, double* x, int64_t n);

/// BLAS-2 -------------------------------------------------------------------

/// y = A * x (A: m x n, x: n, y: m). Parallel over rows if pool given.
void Gemv(const MatrixView& a, const double* x, double* y,
          ThreadPool* pool = nullptr);

/// y = A^T * x (A: m x n, x: m, y: n). Parallel with partial sums.
void GemvTranspose(const MatrixView& a, const double* x, double* y,
                   ThreadPool* pool = nullptr);

/// BLAS-3 -------------------------------------------------------------------

/// C = A * B with cache-blocked tiles, parallel over row blocks. This is the
/// "tuned linear algebra package" path (stands in for BLAS/MKL in the paper's
/// SciDB/Madlib-C++ configurations).
genbase::Status Gemm(const MatrixView& a, const MatrixView& b, Matrix* c,
                     ThreadPool* pool = nullptr, ExecContext* ctx = nullptr);

/// C = A^T * B, blocked and parallel.
genbase::Status GemmTransposeA(const MatrixView& a, const MatrixView& b,
                               Matrix* c, ThreadPool* pool = nullptr,
                               ExecContext* ctx = nullptr);

/// C = A^T * A exploiting symmetry (computes upper triangle, mirrors).
genbase::Status Syrk(const MatrixView& a, Matrix* c,
                     ThreadPool* pool = nullptr, ExecContext* ctx = nullptr);

/// Deliberately unoptimized ijk triple loop with column-strided access to B,
/// single threaded. This is the "Mahout: no sophisticated linear algebra
/// package" path the paper blames for Hadoop's analytics numbers. Kept
/// correct but slow on purpose; the ablation bench quantifies the gap.
genbase::Status GemmNaive(const MatrixView& a, const MatrixView& b, Matrix* c,
                          ExecContext* ctx = nullptr);

/// Naive C = A^T * A (no symmetry exploitation, no blocking).
genbase::Status SyrkNaive(const MatrixView& a, Matrix* c,
                          ExecContext* ctx = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_BLAS_H_
