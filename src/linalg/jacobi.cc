#include "linalg/jacobi.h"

#include <algorithm>
#include <cmath>

namespace genbase::linalg {

genbase::Result<EigenDecomposition> JacobiEigen(const Matrix& a,
                                                int max_sweeps) {
  const int64_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("JacobiEigen requires a square matrix");
  }
  Matrix m = a;  // Working copy.
  Matrix v(n, n);
  for (int64_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < 1e-24) break;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q.
        for (int64_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.values.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.values[i] = m(i, i);
  // Sort ascending with eigenvectors.
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return out.values[x] < out.values[y];
  });
  EigenDecomposition sorted;
  sorted.values.resize(static_cast<size_t>(n));
  sorted.vectors = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    sorted.values[j] = out.values[order[j]];
    for (int64_t i = 0; i < n; ++i) sorted.vectors(i, j) = v(i, order[j]);
  }
  return sorted;
}

}  // namespace genbase::linalg
