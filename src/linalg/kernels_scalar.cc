#include "common/simd.h"
#include "linalg/kernels.h"

namespace genbase::linalg {

namespace {

double DotScalar(const double* x, const double* y, int64_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

void AxpyScalar(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void GemmMicroScalar(int64_t kc, const double* ap, const double* bp,
                     double* c, int64_t ldc) {
  double acc[kMicroRows][kMicroCols] = {};
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMicroRows;
    const double* b = bp + k * kMicroCols;
    for (int64_t r = 0; r < kMicroRows; ++r) {
      const double ar = a[r];
      for (int64_t j = 0; j < kMicroCols; ++j) acc[r][j] += ar * b[j];
    }
  }
  for (int64_t r = 0; r < kMicroRows; ++r) {
    double* crow = c + r * ldc;
    for (int64_t j = 0; j < kMicroCols; ++j) crow[j] += acc[r][j];
  }
}

}  // namespace

const KernelOps& ScalarKernels() {
  static const KernelOps ops = {"scalar", DotScalar, AxpyScalar,
                                GemmMicroScalar};
  return ops;
}

const KernelOps& ActiveKernels() {
  if (simd::ActiveBackend() == simd::Backend::kSimd) {
    const KernelOps* avx2 = Avx2Kernels();
    if (avx2 != nullptr) return *avx2;
  }
  return ScalarKernels();
}

}  // namespace genbase::linalg
