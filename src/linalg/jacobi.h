#ifndef GENBASE_LINALG_JACOBI_H_
#define GENBASE_LINALG_JACOBI_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// \brief Full eigen decomposition of a dense symmetric matrix via the
/// cyclic Jacobi rotation method. O(n^3) per sweep — used as the trusted
/// reference oracle in tests (Lanczos, covariance spectra) and for the small
/// projected problems where robustness matters more than speed.
///
/// On success `values` are ascending and `vectors` columns are the matching
/// orthonormal eigenvectors.
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;
};

genbase::Result<EigenDecomposition> JacobiEigen(const Matrix& a,
                                                int max_sweeps = 64);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_JACOBI_H_
