// AVX2+FMA kernel set. Compiled in every build: the functions carry
// function-level target attributes, so the translation unit itself needs no
// special -m flags (GENBASE_NATIVE_ARCH may still add them), and the binary
// stays runnable on baseline x86-64 — Avx2Kernels() returns nullptr unless
// CPUID says the instructions actually exist.

#include "common/simd.h"
#include "linalg/kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GENBASE_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#define GENBASE_AVX2 __attribute__((target("avx2,fma")))
#endif

namespace genbase::linalg {

#ifdef GENBASE_HAVE_AVX2_BUILD

namespace {

GENBASE_AVX2 inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

GENBASE_AVX2 double DotAvx2(const double* x, const double* y, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                           _mm256_loadu_pd(y + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8),
                           _mm256_loadu_pd(y + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                           _mm256_loadu_pd(y + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i),
                           _mm256_loadu_pd(y + i), acc0);
  }
  double s = HorizontalSum(
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

GENBASE_AVX2 void AxpyAvx2(double alpha, const double* x, double* y,
                           int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d y0 = _mm256_loadu_pd(y + i);
    const __m256d y1 = _mm256_loadu_pd(y + i + 4);
    _mm256_storeu_pd(y + i,
                     _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), y0));
    _mm256_storeu_pd(y + i + 4,
                     _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4), y1));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// 4x8 micro-tile: 8 FMA accumulators, B strip streams as two vectors per
/// depth step, A strip broadcasts one element per row.
GENBASE_AVX2 void GemmMicroAvx2(int64_t kc, const double* ap,
                                const double* bp, double* c, int64_t ldc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (int64_t k = 0; k < kc; ++k) {
    const __m256d b0 = _mm256_loadu_pd(bp + k * kMicroCols);
    const __m256d b1 = _mm256_loadu_pd(bp + k * kMicroCols + 4);
    const double* a = ap + k * kMicroRows;
    __m256d av = _mm256_broadcast_sd(a);
    c00 = _mm256_fmadd_pd(av, b0, c00);
    c01 = _mm256_fmadd_pd(av, b1, c01);
    av = _mm256_broadcast_sd(a + 1);
    c10 = _mm256_fmadd_pd(av, b0, c10);
    c11 = _mm256_fmadd_pd(av, b1, c11);
    av = _mm256_broadcast_sd(a + 2);
    c20 = _mm256_fmadd_pd(av, b0, c20);
    c21 = _mm256_fmadd_pd(av, b1, c21);
    av = _mm256_broadcast_sd(a + 3);
    c30 = _mm256_fmadd_pd(av, b0, c30);
    c31 = _mm256_fmadd_pd(av, b1, c31);
  }
  double* r0 = c;
  double* r1 = c + ldc;
  double* r2 = c + 2 * ldc;
  double* r3 = c + 3 * ldc;
  _mm256_storeu_pd(r0, _mm256_add_pd(_mm256_loadu_pd(r0), c00));
  _mm256_storeu_pd(r0 + 4, _mm256_add_pd(_mm256_loadu_pd(r0 + 4), c01));
  _mm256_storeu_pd(r1, _mm256_add_pd(_mm256_loadu_pd(r1), c10));
  _mm256_storeu_pd(r1 + 4, _mm256_add_pd(_mm256_loadu_pd(r1 + 4), c11));
  _mm256_storeu_pd(r2, _mm256_add_pd(_mm256_loadu_pd(r2), c20));
  _mm256_storeu_pd(r2 + 4, _mm256_add_pd(_mm256_loadu_pd(r2 + 4), c21));
  _mm256_storeu_pd(r3, _mm256_add_pd(_mm256_loadu_pd(r3), c30));
  _mm256_storeu_pd(r3 + 4, _mm256_add_pd(_mm256_loadu_pd(r3 + 4), c31));
}

}  // namespace

const KernelOps* Avx2Kernels() {
  static const bool supported = simd::CpuSupportsAvx2();
  if (!supported) return nullptr;
  static const KernelOps ops = {"avx2", DotAvx2, AxpyAvx2, GemmMicroAvx2};
  return &ops;
}

#else  // !GENBASE_HAVE_AVX2_BUILD

const KernelOps* Avx2Kernels() { return nullptr; }

#endif

}  // namespace genbase::linalg
