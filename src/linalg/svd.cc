#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/blas.h"

namespace genbase::linalg {

genbase::Result<SvdResult> TruncatedSvd(const MatrixView& a,
                                        const SvdOptions& options,
                                        ExecContext* ctx) {
  const int64_t m = a.rows;
  const int64_t n = a.cols;
  if (m == 0 || n == 0) return Status::InvalidArgument("empty matrix in SVD");
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  const bool tuned = options.quality == KernelQuality::kTuned;

  // Gram operator: y = A^T (A x); temp buffer reused across applications.
  std::vector<double> tmp(static_cast<size_t>(m));
  LinearOperator op;
  op.n = n;
  op.apply = [&](const double* x, double* y) -> genbase::Status {
    if (tuned) {
      Gemv(a, x, tmp.data(), pool);
      GemvTranspose(a, tmp.data(), y, pool);
    } else {
      // Naive path: no parallelism, no unrolled dot products.
      for (int64_t i = 0; i < m; ++i) {
        double s = 0;
        for (int64_t j = 0; j < n; ++j) s += a(i, j) * x[j];
        tmp[static_cast<size_t>(i)] = s;
      }
      for (int64_t j = 0; j < n; ++j) {
        double s = 0;
        for (int64_t i = 0; i < m; ++i) s += a(i, j) * tmp[i];
        y[j] = s;
      }
    }
    if (ctx != nullptr) return ctx->CheckBudgets();
    return genbase::Status::OK();
  };

  LanczosOptions lopt;
  lopt.num_eigenpairs = std::min<int>(options.rank, static_cast<int>(n));
  lopt.tolerance = options.tolerance;
  lopt.seed = options.seed;
  lopt.compute_vectors = true;
  GENBASE_ASSIGN_OR_RETURN(
      LanczosResult lr,
      options.reorthogonalize ? LanczosLargestEigenpairs(op, lopt, ctx)
                              : LanczosNoReorth(op, lopt, ctx));

  SvdResult out;
  out.lanczos_iterations = lr.iterations;
  const int k = static_cast<int>(lr.eigenvalues.size());
  out.singular_values.resize(k);
  out.v = std::move(lr.eigenvectors);
  out.u = Matrix(m, k);
  std::vector<double> av(static_cast<size_t>(m));
  std::vector<double> vcol(static_cast<size_t>(n));
  for (int i = 0; i < k; ++i) {
    const double lambda = std::max(0.0, lr.eigenvalues[i]);
    const double sigma = std::sqrt(lambda);
    out.singular_values[i] = sigma;
    for (int64_t t = 0; t < n; ++t) vcol[t] = out.v(t, i);
    Gemv(a, vcol.data(), av.data(), pool);
    if (sigma > 1e-12) {
      for (int64_t t = 0; t < m; ++t) out.u(t, i) = av[t] / sigma;
    }
  }
  return out;
}

}  // namespace genbase::linalg
