#ifndef GENBASE_LINALG_KERNELS_H_
#define GENBASE_LINALG_KERNELS_H_

#include <cstdint>

namespace genbase::linalg {

/// Micro-kernel register-block geometry shared by the packed Gemm/Syrk macro
/// loops and the pack routines: each micro-tile of C is kMr x kNr doubles
/// (4 rows x two 4-wide vectors on AVX2 — 8 YMM accumulators, within the 16
/// available).
inline constexpr int64_t kMicroRows = 4;  // MR
inline constexpr int64_t kMicroCols = 8;  // NR

/// \brief The raw compute kernels behind the BLAS layer, selected at runtime
/// so one binary carries both a portable scalar set and an AVX2+FMA set.
///
/// Packed operand layout (GotoBLAS-style):
///  - A panel: micro-row strips; strip s holds ap[s*kc*kMr + k*kMr + r] =
///    op(A)(i0 + s*kMr + r, k0 + k), zero-padded past the last valid row.
///  - B panel: micro-col strips; strip t holds bp[t*kc*kNr + k*kNr + c] =
///    B(k0 + k, j0 + t*kNr + c), zero-padded past the last valid column.
struct KernelOps {
  const char* name;

  double (*dot)(const double* x, const double* y, int64_t n);
  void (*axpy)(double alpha, const double* x, double* y, int64_t n);

  /// C(kMicroRows x kMicroCols, row stride ldc) += Ap-strip * Bp-strip over
  /// depth kc. Always operates on full (possibly zero-padded) tiles; edge
  /// handling is the macro loop's job.
  void (*gemm_micro)(int64_t kc, const double* ap, const double* bp,
                     double* c, int64_t ldc);
};

/// Portable scalar kernels (always available; also the reference the
/// property tests compare against).
const KernelOps& ScalarKernels();

/// AVX2+FMA kernels, or nullptr when the build target or the running CPU
/// cannot execute them. Compiled with function-level target attributes so
/// the rest of the binary stays baseline-ISA.
const KernelOps* Avx2Kernels();

/// The set the BLAS layer should use right now: honors
/// simd::ActiveBackend(), falling back to scalar kernels when AVX2 is
/// unavailable (the packed macro paths still run — just on scalar tiles).
const KernelOps& ActiveKernels();

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_KERNELS_H_
