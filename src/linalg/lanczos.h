#ifndef GENBASE_LINALG_LANCZOS_H_
#define GENBASE_LINALG_LANCZOS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// \brief Matrix-free symmetric linear operator: y = A x.
struct LinearOperator {
  int64_t n = 0;
  std::function<genbase::Status(const double* x, double* y)> apply;
};

struct LanczosOptions {
  int num_eigenpairs = 50;     ///< k: the paper's Query 4 asks for 50.
  int max_iterations = 0;      ///< 0 = auto (min(n, 2k + 120)).
  double tolerance = 1e-10;    ///< Residual tolerance relative to |theta|.
  uint64_t seed = 42;          ///< Starting-vector seed (deterministic).
  bool compute_vectors = true;
};

struct LanczosResult {
  std::vector<double> eigenvalues;  ///< Descending, length <= k.
  Matrix eigenvectors;              ///< n x k Ritz vectors (if requested).
  int iterations = 0;
  bool converged = false;
};

/// \brief Lanczos iteration with full reorthogonalization for the largest
/// eigenpairs of a symmetric positive semidefinite operator.
///
/// This is the algorithm GenBase names for Query 4: "the Lanczos algorithm,
/// which is a power method that can iteratively find the largest eigenvalues
/// of symmetric positive semidefinite matrices." Full reorthogonalization
/// (two-pass modified Gram-Schmidt against the stored basis) keeps the basis
/// orthogonal at the cost of O(iter * n) extra work per step; the ablation
/// bench compares against selective reorthogonalization.
genbase::Result<LanczosResult> LanczosLargestEigenpairs(
    const LinearOperator& op, const LanczosOptions& options,
    ExecContext* ctx = nullptr);

/// \brief Variant without reorthogonalization (classic three-term recurrence
/// only). Converges on easy spectra, loses orthogonality on clustered ones;
/// exists for the ablation study.
genbase::Result<LanczosResult> LanczosNoReorth(const LinearOperator& op,
                                               const LanczosOptions& options,
                                               ExecContext* ctx = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_LANCZOS_H_
