#ifndef GENBASE_LINALG_QR_H_
#define GENBASE_LINALG_QR_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// \brief Compact Householder QR factorization of an m x n matrix (m >= n).
///
/// Follows the LAPACK dgeqrf convention logically (R in the upper triangle,
/// Householder vectors with implicit v(0)=1 below it, scalar factors in
/// tau), but the packed storage is the TRANSPOSE of that matrix so that all
/// inner loops run over contiguous memory (see qr.cc).
class HouseholderQr {
 public:
  /// Factors `a`. `a` is consumed (transposed into internal storage).
  static genbase::Result<HouseholderQr> Factor(Matrix a,
                                               ExecContext* ctx = nullptr);

  /// Factors the viewed matrix without consuming caller storage (the
  /// transposed packed copy is still made). Bit-identical to the consuming
  /// overload — both run the same packed Householder loop.
  static genbase::Result<HouseholderQr> Factor(const MatrixView& a,
                                               ExecContext* ctx = nullptr);

  int64_t rows() const { return qrt_.cols(); }
  int64_t cols() const { return qrt_.rows(); }

  /// Overwrites b (length m) with Q^T b.
  void ApplyQTranspose(double* b) const;

  /// Overwrites b (length m) with Q b.
  void ApplyQ(double* b) const;

  /// Solves R x = b[0..n) by back substitution. Returns InvalidArgument on a
  /// numerically singular R.
  genbase::Status SolveR(const double* b, double* x) const;

  /// Returns the thin Q (m x n) explicitly; used by tests and TSQR.
  Matrix ThinQ() const;

  /// Returns the R factor (n x n).
  Matrix R() const;

  /// Packed transposed factorization (n x m); row j holds A's column j.
  const Matrix& packed() const { return qrt_; }

 private:
  HouseholderQr(Matrix qrt, std::vector<double> tau)
      : qrt_(std::move(qrt)), tau_(std::move(tau)) {}

  /// Householder loop over a pre-packed transposed matrix; the single code
  /// path behind both Factor overloads.
  static genbase::Result<HouseholderQr> FactorPacked(Matrix qrt, int64_t m,
                                                     int64_t n,
                                                     ExecContext* ctx);

  Matrix qrt_;
  std::vector<double> tau_;
};

/// \brief Result of a least-squares fit.
struct LeastSquaresFit {
  std::vector<double> coefficients;  ///< One per predictor column.
  double residual_norm = 0.0;        ///< ||A x - b||_2.
  double r_squared = 0.0;            ///< Coefficient of determination.
};

/// \brief Solves min ||A x - b|| via Householder QR. This is the analytics
/// kernel of GenBase Query 1 ("we use a QR decomposition technique to solve
/// the linear regression problem"). A is consumed.
genbase::Result<LeastSquaresFit> LeastSquaresQr(Matrix a,
                                                const std::vector<double>& b,
                                                ExecContext* ctx = nullptr);

/// View overload for callers whose design matrix lives in externally planned
/// storage (the static-plan arena). Same arithmetic order as the consuming
/// overload, so results are bitwise identical.
genbase::Result<LeastSquaresFit> LeastSquaresQr(const MatrixView& a,
                                                const std::vector<double>& b,
                                                ExecContext* ctx = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_QR_H_
