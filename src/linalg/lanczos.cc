#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/tridiag.h"

namespace genbase::linalg {

namespace {

genbase::Result<LanczosResult> LanczosImpl(const LinearOperator& op,
                                           const LanczosOptions& options,
                                           bool reorthogonalize,
                                           ExecContext* ctx) {
  const int64_t n = op.n;
  if (n <= 0) return Status::InvalidArgument("operator dimension must be > 0");
  const int k = std::min<int>(options.num_eigenpairs, static_cast<int>(n));
  const int max_iter =
      options.max_iterations > 0
          ? std::min<int>(options.max_iterations, static_cast<int>(n))
          : std::min<int64_t>(n, 2 * k + 120);

  // Lanczos basis, one row per iteration (row-major keeps reorth contiguous).
  Matrix basis(max_iter, n);
  std::vector<double> alpha, beta;
  alpha.reserve(max_iter);
  beta.reserve(max_iter);

  Rng rng(options.seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.Gaussian();
  {
    const double nv = Nrm2(v.data(), n);
    Scal(1.0 / nv, v.data(), n);
  }
  std::copy(v.begin(), v.end(), basis.Row(0));

  std::vector<double> w(static_cast<size_t>(n), 0.0);
  std::vector<double> theta;      // Ritz values of T_j, ascending.
  Matrix s;                       // Eigenvectors of T_j.
  int j = 0;
  bool converged = false;

  for (j = 0; j < max_iter; ++j) {
    if (ctx != nullptr) {
      Status st = ctx->CheckBudgets();
      if (!st.ok()) return st;
    }
    const double* vj = basis.Row(j);
    GENBASE_RETURN_NOT_OK(op.apply(vj, w.data()));
    const double a_j = Dot(vj, w.data(), n);
    alpha.push_back(a_j);
    // w -= alpha_j v_j + beta_{j-1} v_{j-1}.
    Axpy(-a_j, vj, w.data(), n);
    if (j > 0) Axpy(-beta[j - 1], basis.Row(j - 1), w.data(), n);
    if (reorthogonalize) {
      // Two-pass modified Gram-Schmidt against the whole stored basis.
      for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i <= j; ++i) {
          const double c = Dot(basis.Row(i), w.data(), n);
          if (c != 0.0) Axpy(-c, basis.Row(i), w.data(), n);
        }
      }
    }
    double b_j = Nrm2(w.data(), n);

    // Convergence test on the projected (tridiagonal) problem.
    const int m = j + 1;
    if (m >= k || b_j <= 1e-300) {
      std::vector<double> d(alpha.begin(), alpha.end());
      std::vector<double> e(beta.begin(), beta.end());
      e.resize(static_cast<size_t>(m), 0.0);
      Matrix z(m, m);
      for (int i = 0; i < m; ++i) z(i, i) = 1.0;
      GENBASE_RETURN_NOT_OK(SymmetricTridiagonalEigen(&d, &e, &z));
      // Residual bound for Ritz pair i: |beta_j * z(m-1, i)|.
      bool all_ok = m >= k;
      for (int i = 0; i < k && all_ok; ++i) {
        const int col = m - 1 - i;  // Largest eigenvalues at the end.
        const double resid = std::fabs(b_j * z(m - 1, col));
        const double scale = std::max(1e-30, std::fabs(d[col]));
        if (resid > options.tolerance * scale) all_ok = false;
      }
      if (all_ok || b_j <= 1e-300 || j + 1 == max_iter) {
        theta = std::move(d);
        s = std::move(z);
        converged = all_ok;
        ++j;
        break;
      }
    }

    if (b_j <= 1e-300) {
      // Invariant subspace hit before k pairs: restart with a fresh random
      // direction orthogonal to the basis.
      for (auto& x : w) x = rng.Gaussian();
      for (int i = 0; i <= j; ++i) {
        const double c = Dot(basis.Row(i), w.data(), n);
        Axpy(-c, basis.Row(i), w.data(), n);
      }
      b_j = Nrm2(w.data(), n);
      if (b_j <= 1e-300) {
        ++j;
        break;  // Whole space exhausted.
      }
    }
    beta.push_back(b_j);
    if (j + 1 < max_iter) {
      double* vnext = basis.Row(j + 1);
      for (int64_t i = 0; i < n; ++i) vnext[i] = w[i] / b_j;
    }
  }

  const int m = std::min<int>(j, static_cast<int>(alpha.size()));
  if (theta.empty()) {
    std::vector<double> d(alpha.begin(), alpha.begin() + m);
    std::vector<double> e(beta.begin(),
                          beta.begin() + std::max(0, m - 1));
    e.resize(static_cast<size_t>(m), 0.0);
    Matrix z(m, m);
    for (int i = 0; i < m; ++i) z(i, i) = 1.0;
    GENBASE_RETURN_NOT_OK(SymmetricTridiagonalEigen(&d, &e, &z));
    theta = std::move(d);
    s = std::move(z);
  }

  LanczosResult result;
  result.iterations = m;
  result.converged = converged;
  const int found = std::min<int>(k, static_cast<int>(theta.size()));
  result.eigenvalues.resize(found);
  for (int i = 0; i < found; ++i) {
    result.eigenvalues[i] = theta[theta.size() - 1 - i];  // Descending.
  }
  if (options.compute_vectors) {
    result.eigenvectors = Matrix(n, found);
    // Ritz vector i = sum_r basis[r] * s(r, col_i).
    for (int i = 0; i < found; ++i) {
      const int col = static_cast<int>(theta.size()) - 1 - i;
      for (int r = 0; r < m; ++r) {
        const double c = s(r, col);
        if (c == 0.0) continue;
        const double* br = basis.Row(r);
        for (int64_t t = 0; t < n; ++t) result.eigenvectors(t, i) += c * br[t];
      }
      // Normalize (defensive; should already be unit norm).
      double nrm = 0;
      for (int64_t t = 0; t < n; ++t) {
        nrm += result.eigenvectors(t, i) * result.eigenvectors(t, i);
      }
      nrm = std::sqrt(nrm);
      if (nrm > 0) {
        for (int64_t t = 0; t < n; ++t) result.eigenvectors(t, i) /= nrm;
      }
    }
  }
  return result;
}

}  // namespace

genbase::Result<LanczosResult> LanczosLargestEigenpairs(
    const LinearOperator& op, const LanczosOptions& options,
    ExecContext* ctx) {
  return LanczosImpl(op, options, /*reorthogonalize=*/true, ctx);
}

genbase::Result<LanczosResult> LanczosNoReorth(const LinearOperator& op,
                                               const LanczosOptions& options,
                                               ExecContext* ctx) {
  return LanczosImpl(op, options, /*reorthogonalize=*/false, ctx);
}

}  // namespace genbase::linalg
