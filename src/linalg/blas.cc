#include "linalg/blas.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/simd.h"
#include "linalg/kernels.h"

namespace genbase::linalg {

namespace {
constexpr int64_t kTile = 64;  // Legacy scalar-path blocking.

/// Packed-path macro blocking: depth panels of kKc are packed once per
/// (column panel, depth) pair; each worker packs its own kMc-row block of
/// the left operand; B panels are capped at kNc columns so the shared pack
/// buffer stays cache-friendly (kKc * kNc doubles = 4 MiB).
constexpr int64_t kKc = 256;
constexpr int64_t kMc = 128;
constexpr int64_t kNc = 2048;

static_assert(kMc % kMicroRows == 0, "row block must hold whole strips");

int64_t RoundUp(int64_t v, int64_t to) { return (v + to - 1) / to * to; }
}  // namespace

double Dot(const double* x, const double* y, int64_t n) {
  return ActiveKernels().dot(x, y, n);
}

double Nrm2(const double* x, int64_t n) {
  // Scaled to avoid overflow (netlib dnrm2 style).
  double scale = 0.0, ssq = 1.0;
  for (int64_t i = 0; i < n; ++i) {
    if (x[i] != 0.0) {
      const double ax = std::fabs(x[i]);
      if (scale < ax) {
        ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
        scale = ax;
      } else {
        ssq += (ax / scale) * (ax / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  ActiveKernels().axpy(alpha, x, y, n);
}

void Scal(double alpha, double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void Gemv(const MatrixView& a, const double* x, double* y, ThreadPool* pool) {
  const KernelOps& ops = ActiveKernels();
  auto body = [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      y[i] = ops.dot(a.data + i * a.stride, x, a.cols);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && a.rows >= 256) {
    pool->ParallelFor(0, a.rows, body);
  } else {
    body(0, a.rows);
  }
}

void GemvTranspose(const MatrixView& a, const double* x, double* y,
                   ThreadPool* pool) {
  const KernelOps& ops = ActiveKernels();
  std::fill(y, y + a.cols, 0.0);
  // Fixed-size row shards (independent of the pool width) so the reduction
  // tree — per-shard partials merged in shard order — is identical for any
  // thread count: y is bitwise-stable across pools.
  constexpr int64_t kShardRows = 256;
  const int64_t shards = (a.rows + kShardRows - 1) / kShardRows;
  if (shards <= 1) {
    for (int64_t i = 0; i < a.rows; ++i) {
      ops.axpy(x[i], a.data + i * a.stride, y, a.cols);
    }
    return;
  }
  auto shard_into = [&](int64_t s, double* part) {
    const int64_t lo = s * kShardRows;
    const int64_t hi = std::min<int64_t>(a.rows, lo + kShardRows);
    for (int64_t i = lo; i < hi; ++i) {
      ops.axpy(x[i], a.data + i * a.stride, part, a.cols);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && a.rows >= 512) {
    std::vector<std::vector<double>> partials(
        static_cast<size_t>(shards), std::vector<double>(a.cols, 0.0));
    pool->ParallelFor(0, shards, [&](int64_t s_lo, int64_t s_hi) {
      for (int64_t s = s_lo; s < s_hi; ++s) {
        shard_into(s, partials[static_cast<size_t>(s)].data());
      }
    });
    for (const auto& part : partials) ops.axpy(1.0, part.data(), y, a.cols);
  } else {
    std::vector<double> part(static_cast<size_t>(a.cols));
    for (int64_t s = 0; s < shards; ++s) {
      std::fill(part.begin(), part.end(), 0.0);
      shard_into(s, part.data());
      ops.axpy(1.0, part.data(), y, a.cols);
    }
  }
}

namespace {

/// --- legacy scalar-blocked path (Backend::kScalar) --------------------------

/// Multiplies the (i0..i1, k0..k1) block of A by the (k0..k1, j0..j1) block
/// of B into C. Inner loops are i-k-j so B rows stream contiguously.
void GemmBlock(const MatrixView& a, const MatrixView& b, double* c,
               int64_t c_stride, int64_t i0, int64_t i1, int64_t j0,
               int64_t j1, int64_t k0, int64_t k1) {
  for (int64_t i = i0; i < i1; ++i) {
    const double* arow = a.data + i * a.stride;
    double* crow = c + i * c_stride;
    for (int64_t k = k0; k < k1; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data + k * b.stride;
      for (int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
    }
  }
}

/// --- packed register-blocked path (Backend::kSimd) --------------------------

/// Packs the kc x nc panel of B (rows k0.., cols j0..) into kMicroCols-wide
/// strips, zero-padding the last strip. With `bias`, bias[j] is subtracted
/// from column j — the fused-centering hook used by SyrkCentered.
void PackBPanel(const double* b, int64_t stride, int64_t k0, int64_t kc,
                int64_t j0, int64_t nc, const double* bias, double* bp) {
  const int64_t strips = RoundUp(nc, kMicroCols) / kMicroCols;
  for (int64_t t = 0; t < strips; ++t) {
    const int64_t j_begin = t * kMicroCols;
    const int64_t width = std::min<int64_t>(kMicroCols, nc - j_begin);
    double* dst = bp + t * kc * kMicroCols;
    for (int64_t k = 0; k < kc; ++k) {
      const double* src = b + (k0 + k) * stride + j0 + j_begin;
      double* out = dst + k * kMicroCols;
      if (bias == nullptr) {
        for (int64_t c = 0; c < width; ++c) out[c] = src[c];
      } else {
        const double* bi = bias + j0 + j_begin;
        for (int64_t c = 0; c < width; ++c) out[c] = src[c] - bi[c];
      }
      for (int64_t c = width; c < kMicroCols; ++c) out[c] = 0.0;
    }
  }
}

/// Packs the mc x kc block of op(A) (rows i0.., depth k0..) into kMicroRows
/// strips. op(A) = A when !a_trans, A^T when a_trans (reading column slices
/// of A, which packing turns into contiguous streams for the micro-kernel).
/// `bias` subtracts bias[i] from logical row i of op(A) (the centered-Syrk
/// left operand).
void PackABlock(const double* a, int64_t stride, bool a_trans,
                int64_t i0, int64_t mc, int64_t k0, int64_t kc,
                const double* bias, double* ap) {
  const int64_t strips = RoundUp(mc, kMicroRows) / kMicroRows;
  for (int64_t s = 0; s < strips; ++s) {
    const int64_t i_begin = s * kMicroRows;
    const int64_t height = std::min<int64_t>(kMicroRows, mc - i_begin);
    double* dst = ap + s * kc * kMicroRows;
    if (a_trans) {
      for (int64_t k = 0; k < kc; ++k) {
        const double* src = a + (k0 + k) * stride + i0 + i_begin;
        double* out = dst + k * kMicroRows;
        if (bias == nullptr) {
          for (int64_t r = 0; r < height; ++r) out[r] = src[r];
        } else {
          const double* bi = bias + i0 + i_begin;
          for (int64_t r = 0; r < height; ++r) out[r] = src[r] - bi[r];
        }
        for (int64_t r = height; r < kMicroRows; ++r) out[r] = 0.0;
      }
    } else {
      for (int64_t k = 0; k < kc; ++k) {
        double* out = dst + k * kMicroRows;
        for (int64_t r = 0; r < height; ++r) {
          const double v = a[(i0 + i_begin + r) * stride + k0 + k];
          out[r] = bias == nullptr ? v : v - bias[i0 + i_begin + r];
        }
        for (int64_t r = height; r < kMicroRows; ++r) out[r] = 0.0;
      }
    }
  }
}

/// C(m x n) += op(A) * B via packed panels and the dispatched micro-kernel.
/// C must be zeroed (or hold the value to accumulate onto) on entry. With
/// upper_only, micro-tiles entirely below the diagonal are skipped (Syrk).
///
/// Work is threaded over kMc row blocks of C; every element of C is owned by
/// exactly one task and all loop orders are fixed, so results are
/// bitwise-identical for any pool size.
genbase::Status PackedGemm(int64_t m, int64_t n, int64_t kdim,
                           const double* a, int64_t a_stride, bool a_trans,
                           const double* a_bias, const double* b,
                           int64_t b_stride, const double* b_bias, double* c,
                           int64_t c_stride, bool upper_only,
                           ThreadPool* pool, ExecContext* ctx) {
  if (m == 0 || n == 0 || kdim == 0) return Status::OK();
  const KernelOps& ops = ActiveKernels();
  const int64_t row_blocks = (m + kMc - 1) / kMc;
  // Cached like the per-worker ap buffer: the hot paths call BLAS-3 once
  // per query phase, and a fresh multi-MiB allocation per call is pure
  // allocator traffic. Only the calling thread packs B, so thread_local is
  // race-free. Workers must read the CALLER's instance: thread_locals are
  // not lambda-captured (each worker would see its own empty vector), so
  // the panel is handed to the task body as a plain pointer.
  static thread_local std::vector<double> bp_storage;
  bp_storage.resize(
      static_cast<size_t>(kKc * RoundUp(std::min(n, kNc), kMicroCols)));
  double* const bp = bp_storage.data();
  Status worker_status = Status::OK();
  std::mutex status_mu;
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t k0 = 0; k0 < kdim; k0 += kKc) {
      const int64_t kc = std::min(kKc, kdim - k0);
      PackBPanel(b, b_stride, k0, kc, jc, nc, b_bias, bp);
      auto body = [&](int64_t blo, int64_t bhi) {
        static thread_local std::vector<double> ap_buf;
        ap_buf.resize(static_cast<size_t>(kMc * kc));
        for (int64_t bi = blo; bi < bhi; ++bi) {
          if (ctx != nullptr) {
            Status st = ctx->CheckBudgets();
            if (!st.ok()) {
              std::lock_guard<std::mutex> lock(status_mu);
              worker_status = st;
              return;
            }
          }
          const int64_t i0 = bi * kMc;
          const int64_t mc = std::min(kMc, m - i0);
          if (upper_only && jc + nc <= i0) continue;
          PackABlock(a, a_stride, a_trans, i0, mc, k0, kc, a_bias,
                     ap_buf.data());
          const int64_t strips_m = RoundUp(mc, kMicroRows) / kMicroRows;
          for (int64_t jr = 0; jr < nc; jr += kMicroCols) {
            const double* bstrip =
                bp + (jr / kMicroCols) * kc * kMicroCols;
            const int64_t width = std::min(kMicroCols, nc - jr);
            for (int64_t s = 0; s < strips_m; ++s) {
              const int64_t ir = i0 + s * kMicroRows;
              if (upper_only && jc + jr + width <= ir) continue;
              const int64_t height = std::min(kMicroRows, i0 + mc - ir);
              const double* astrip = ap_buf.data() + s * kc * kMicroRows;
              if (height == kMicroRows && width == kMicroCols) {
                ops.gemm_micro(kc, astrip, bstrip,
                               c + ir * c_stride + jc + jr, c_stride);
              } else {
                double scratch[kMicroRows * kMicroCols] = {0};
                ops.gemm_micro(kc, astrip, bstrip, scratch, kMicroCols);
                for (int64_t r = 0; r < height; ++r) {
                  double* crow = c + (ir + r) * c_stride + jc + jr;
                  const double* srow = scratch + r * kMicroCols;
                  for (int64_t col = 0; col < width; ++col) {
                    crow[col] += srow[col];
                  }
                }
              }
            }
          }
        }
      };
      if (pool != nullptr && pool->num_threads() > 1 && row_blocks > 1) {
        pool->ParallelFor(0, row_blocks, body);
      } else {
        body(0, row_blocks);
      }
      if (!worker_status.ok()) return worker_status;
    }
  }
  return worker_status;
}

void MirrorUpperToLower(Matrix* c) {
  const int64_t n = c->rows();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) (*c)(j, i) = (*c)(i, j);
  }
}

bool UsePackedPath() {
  return simd::ActiveBackend() == simd::Backend::kSimd;
}

}  // namespace

genbase::Status Gemm(const MatrixView& a, const MatrixView& b, Matrix* c,
                     ThreadPool* pool, ExecContext* ctx) {
  if (a.cols != b.rows || c->rows() != a.rows || c->cols() != b.cols) {
    return Status::InvalidArgument("gemm shape mismatch");
  }
  c->Fill(0.0);
  if (UsePackedPath()) {
    return PackedGemm(a.rows, b.cols, a.cols, a.data, a.stride,
                      /*a_trans=*/false, nullptr, b.data, b.stride, nullptr,
                      c->data(), c->cols(), /*upper_only=*/false, pool, ctx);
  }
  const int64_t row_blocks = (a.rows + kTile - 1) / kTile;
  Status worker_status = Status::OK();
  std::mutex status_mu;
  auto body = [&](int64_t blo, int64_t bhi) {
    for (int64_t bi = blo; bi < bhi; ++bi) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          worker_status = st;
          return;
        }
      }
      const int64_t i0 = bi * kTile;
      const int64_t i1 = std::min(a.rows, i0 + kTile);
      for (int64_t k0 = 0; k0 < a.cols; k0 += kTile) {
        const int64_t k1 = std::min(a.cols, k0 + kTile);
        for (int64_t j0 = 0; j0 < b.cols; j0 += kTile) {
          const int64_t j1 = std::min(b.cols, j0 + kTile);
          GemmBlock(a, b, c->data(), c->cols(), i0, i1, j0, j1, k0, k1);
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && row_blocks > 1) {
    pool->ParallelFor(0, row_blocks, body);
  } else {
    body(0, row_blocks);
  }
  return worker_status;
}

genbase::Status GemmTransposeA(const MatrixView& a, const MatrixView& b,
                               Matrix* c, ThreadPool* pool,
                               ExecContext* ctx) {
  // C[n x p] = A^T[n x m] * B[m x p].
  if (a.rows != b.rows || c->rows() != a.cols || c->cols() != b.cols) {
    return Status::InvalidArgument("gemmTa shape mismatch");
  }
  c->Fill(0.0);
  if (UsePackedPath()) {
    return PackedGemm(a.cols, b.cols, a.rows, a.data, a.stride,
                      /*a_trans=*/true, nullptr, b.data, b.stride, nullptr,
                      c->data(), c->cols(), /*upper_only=*/false, pool, ctx);
  }
  // Legacy path: sum over rows of A/B of outer products, parallelized over
  // column blocks of C to avoid races.
  const int64_t col_blocks = (a.cols + kTile - 1) / kTile;
  Status worker_status = Status::OK();
  std::mutex status_mu;
  auto body = [&](int64_t blo, int64_t bhi) {
    for (int64_t bj = blo; bj < bhi; ++bj) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          worker_status = st;
          return;
        }
      }
      const int64_t r0 = bj * kTile;  // Rows of C == columns of A.
      const int64_t r1 = std::min(a.cols, r0 + kTile);
      for (int64_t k = 0; k < a.rows; ++k) {
        const double* arow = a.data + k * a.stride;
        const double* brow = b.data + k * b.stride;
        for (int64_t r = r0; r < r1; ++r) {
          const double w = arow[r];
          if (w == 0.0) continue;
          double* crow = c->Row(r);
          for (int64_t j = 0; j < b.cols; ++j) crow[j] += w * brow[j];
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && col_blocks > 1) {
    pool->ParallelFor(0, col_blocks, body);
  } else {
    body(0, col_blocks);
  }
  return worker_status;
}

genbase::Status Syrk(const MatrixView& a, Matrix* c, ThreadPool* pool,
                     ExecContext* ctx) {
  if (c->rows() != a.cols || c->cols() != a.cols) {
    return Status::InvalidArgument("syrk shape mismatch");
  }
  c->Fill(0.0);
  if (UsePackedPath()) {
    GENBASE_RETURN_NOT_OK(PackedGemm(
        a.cols, a.cols, a.rows, a.data, a.stride, /*a_trans=*/true, nullptr,
        a.data, a.stride, nullptr, c->data(), c->cols(),
        /*upper_only=*/true, pool, ctx));
    MirrorUpperToLower(c);
    return Status::OK();
  }
  const int64_t n = a.cols;
  const int64_t blocks = (n + kTile - 1) / kTile;
  // Upper-triangle block list so work is balanced across the pool.
  std::vector<std::pair<int64_t, int64_t>> tasks;
  for (int64_t bi = 0; bi < blocks; ++bi) {
    for (int64_t bj = bi; bj < blocks; ++bj) tasks.emplace_back(bi, bj);
  }
  Status worker_status = Status::OK();
  std::mutex status_mu;
  auto body = [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          worker_status = st;
          return;
        }
      }
      const int64_t i0 = tasks[t].first * kTile;
      const int64_t i1 = std::min(n, i0 + kTile);
      const int64_t j0 = tasks[t].second * kTile;
      const int64_t j1 = std::min(n, j0 + kTile);
      for (int64_t k = 0; k < a.rows; ++k) {
        const double* arow = a.data + k * a.stride;
        for (int64_t i = i0; i < i1; ++i) {
          const double w = arow[i];
          if (w == 0.0) continue;
          double* crow = c->Row(i);
          const int64_t jstart = std::max(j0, i);
          for (int64_t j = jstart; j < j1; ++j) crow[j] += w * arow[j];
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && tasks.size() > 1) {
    pool->ParallelFor(0, static_cast<int64_t>(tasks.size()), body);
  } else {
    body(0, static_cast<int64_t>(tasks.size()));
  }
  if (!worker_status.ok()) return worker_status;
  MirrorUpperToLower(c);
  return Status::OK();
}

genbase::Status SyrkCentered(const MatrixView& a, const double* col_means,
                             Matrix* c, ThreadPool* pool, ExecContext* ctx) {
  if (c->rows() != a.cols || c->cols() != a.cols) {
    return Status::InvalidArgument("syrk shape mismatch");
  }
  c->Fill(0.0);
  // Always the packed path: centering rides along in the pack, so the
  // centered operand is only ever materialized kKc x kNc at a time. The
  // micro-kernel still dispatches on the active backend.
  GENBASE_RETURN_NOT_OK(PackedGemm(
      a.cols, a.cols, a.rows, a.data, a.stride, /*a_trans=*/true, col_means,
      a.data, a.stride, col_means, c->data(), c->cols(),
      /*upper_only=*/true, pool, ctx));
  MirrorUpperToLower(c);
  return Status::OK();
}

genbase::Status SyrkCentered(const MatrixView& a, const double* col_means,
                             double* c, ThreadPool* pool, ExecContext* ctx) {
  const int64_t n = a.cols;
  std::fill_n(c, static_cast<size_t>(n * n), 0.0);
  GENBASE_RETURN_NOT_OK(PackedGemm(
      n, n, a.rows, a.data, a.stride, /*a_trans=*/true, col_means, a.data,
      a.stride, col_means, c, n, /*upper_only=*/true, pool, ctx));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) c[j * n + i] = c[i * n + j];
  }
  return Status::OK();
}

genbase::Status GemmNaive(const MatrixView& a, const MatrixView& b, Matrix* c,
                          ExecContext* ctx) {
  if (a.cols != b.rows || c->rows() != a.rows || c->cols() != b.cols) {
    return Status::InvalidArgument("gemm shape mismatch");
  }
  for (int64_t i = 0; i < a.rows; ++i) {
    if (ctx != nullptr && (i & 15) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    for (int64_t j = 0; j < b.cols; ++j) {
      double s = 0.0;
      // Column-strided access to B: the cache-hostile textbook loop.
      for (int64_t k = 0; k < a.cols; ++k) {
        s += a(i, k) * b(k, j);
      }
      (*c)(i, j) = s;
    }
  }
  return Status::OK();
}

genbase::Status SyrkNaive(const MatrixView& a, Matrix* c, ExecContext* ctx) {
  if (c->rows() != a.cols || c->cols() != a.cols) {
    return Status::InvalidArgument("syrk shape mismatch");
  }
  for (int64_t i = 0; i < a.cols; ++i) {
    if (ctx != nullptr && (i & 15) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    for (int64_t j = 0; j < a.cols; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < a.rows; ++k) {
        s += a(k, i) * a(k, j);
      }
      (*c)(i, j) = s;
    }
  }
  return Status::OK();
}

}  // namespace genbase::linalg
