#include "linalg/blas.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace genbase::linalg {

namespace {
constexpr int64_t kTile = 64;
}  // namespace

double Dot(const double* x, const double* y, int64_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double Nrm2(const double* x, int64_t n) {
  // Scaled to avoid overflow (netlib dnrm2 style).
  double scale = 0.0, ssq = 1.0;
  for (int64_t i = 0; i < n; ++i) {
    if (x[i] != 0.0) {
      const double ax = std::fabs(x[i]);
      if (scale < ax) {
        ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
        scale = ax;
      } else {
        ssq += (ax / scale) * (ax / scale);
      }
    }
  }
  return scale * std::sqrt(ssq);
}

void Axpy(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scal(double alpha, double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void Gemv(const MatrixView& a, const double* x, double* y, ThreadPool* pool) {
  auto body = [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      y[i] = Dot(a.data + i * a.stride, x, a.cols);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && a.rows >= 256) {
    pool->ParallelFor(0, a.rows, body);
  } else {
    body(0, a.rows);
  }
}

void GemvTranspose(const MatrixView& a, const double* x, double* y,
                   ThreadPool* pool) {
  std::fill(y, y + a.cols, 0.0);
  if (pool != nullptr && pool->num_threads() > 1 && a.rows >= 512) {
    const int shards = pool->num_threads();
    std::vector<std::vector<double>> partials(
        shards, std::vector<double>(a.cols, 0.0));
    const int64_t chunk = (a.rows + shards - 1) / shards;
    pool->ParallelFor(0, shards, [&](int64_t s_lo, int64_t s_hi) {
      for (int64_t s = s_lo; s < s_hi; ++s) {
        double* part = partials[s].data();
        const int64_t lo = s * chunk;
        const int64_t hi = std::min<int64_t>(a.rows, lo + chunk);
        for (int64_t i = lo; i < hi; ++i) {
          Axpy(x[i], a.data + i * a.stride, part, a.cols);
        }
      }
    });
    for (const auto& part : partials) Axpy(1.0, part.data(), y, a.cols);
  } else {
    for (int64_t i = 0; i < a.rows; ++i) {
      Axpy(x[i], a.data + i * a.stride, y, a.cols);
    }
  }
}

namespace {

/// Multiplies the (i0..i1, k0..k1) block of A by the (k0..k1, j0..j1) block
/// of B into C. Inner loops are i-k-j so B rows stream contiguously.
void GemmBlock(const MatrixView& a, const MatrixView& b, double* c,
               int64_t c_stride, int64_t i0, int64_t i1, int64_t j0,
               int64_t j1, int64_t k0, int64_t k1) {
  for (int64_t i = i0; i < i1; ++i) {
    const double* arow = a.data + i * a.stride;
    double* crow = c + i * c_stride;
    for (int64_t k = k0; k < k1; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.data + k * b.stride;
      for (int64_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace

genbase::Status Gemm(const MatrixView& a, const MatrixView& b, Matrix* c,
                     ThreadPool* pool, ExecContext* ctx) {
  if (a.cols != b.rows || c->rows() != a.rows || c->cols() != b.cols) {
    return Status::InvalidArgument("gemm shape mismatch");
  }
  c->Fill(0.0);
  const int64_t row_blocks = (a.rows + kTile - 1) / kTile;
  Status worker_status = Status::OK();
  std::mutex status_mu;
  auto body = [&](int64_t blo, int64_t bhi) {
    for (int64_t bi = blo; bi < bhi; ++bi) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          worker_status = st;
          return;
        }
      }
      const int64_t i0 = bi * kTile;
      const int64_t i1 = std::min(a.rows, i0 + kTile);
      for (int64_t k0 = 0; k0 < a.cols; k0 += kTile) {
        const int64_t k1 = std::min(a.cols, k0 + kTile);
        for (int64_t j0 = 0; j0 < b.cols; j0 += kTile) {
          const int64_t j1 = std::min(b.cols, j0 + kTile);
          GemmBlock(a, b, c->data(), c->cols(), i0, i1, j0, j1, k0, k1);
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && row_blocks > 1) {
    pool->ParallelFor(0, row_blocks, body);
  } else {
    body(0, row_blocks);
  }
  return worker_status;
}

genbase::Status GemmTransposeA(const MatrixView& a, const MatrixView& b,
                               Matrix* c, ThreadPool* pool,
                               ExecContext* ctx) {
  // C[n x p] = A^T[n x m] * B[m x p]; computed as sum over rows of A/B of
  // outer products, parallelized over column blocks of C to avoid races.
  if (a.rows != b.rows || c->rows() != a.cols || c->cols() != b.cols) {
    return Status::InvalidArgument("gemmTa shape mismatch");
  }
  c->Fill(0.0);
  const int64_t col_blocks = (a.cols + kTile - 1) / kTile;
  Status worker_status = Status::OK();
  std::mutex status_mu;
  auto body = [&](int64_t blo, int64_t bhi) {
    for (int64_t bj = blo; bj < bhi; ++bj) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          worker_status = st;
          return;
        }
      }
      const int64_t r0 = bj * kTile;  // Rows of C == columns of A.
      const int64_t r1 = std::min(a.cols, r0 + kTile);
      for (int64_t k = 0; k < a.rows; ++k) {
        const double* arow = a.data + k * a.stride;
        const double* brow = b.data + k * b.stride;
        for (int64_t r = r0; r < r1; ++r) {
          const double w = arow[r];
          if (w == 0.0) continue;
          double* crow = c->Row(r);
          for (int64_t j = 0; j < b.cols; ++j) crow[j] += w * brow[j];
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && col_blocks > 1) {
    pool->ParallelFor(0, col_blocks, body);
  } else {
    body(0, col_blocks);
  }
  return worker_status;
}

genbase::Status Syrk(const MatrixView& a, Matrix* c, ThreadPool* pool,
                     ExecContext* ctx) {
  if (c->rows() != a.cols || c->cols() != a.cols) {
    return Status::InvalidArgument("syrk shape mismatch");
  }
  c->Fill(0.0);
  const int64_t n = a.cols;
  const int64_t blocks = (n + kTile - 1) / kTile;
  // Upper-triangle block list so work is balanced across the pool.
  std::vector<std::pair<int64_t, int64_t>> tasks;
  for (int64_t bi = 0; bi < blocks; ++bi) {
    for (int64_t bj = bi; bj < blocks; ++bj) tasks.emplace_back(bi, bj);
  }
  Status worker_status = Status::OK();
  std::mutex status_mu;
  auto body = [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          worker_status = st;
          return;
        }
      }
      const int64_t i0 = tasks[t].first * kTile;
      const int64_t i1 = std::min(n, i0 + kTile);
      const int64_t j0 = tasks[t].second * kTile;
      const int64_t j1 = std::min(n, j0 + kTile);
      for (int64_t k = 0; k < a.rows; ++k) {
        const double* arow = a.data + k * a.stride;
        for (int64_t i = i0; i < i1; ++i) {
          const double w = arow[i];
          if (w == 0.0) continue;
          double* crow = c->Row(i);
          const int64_t jstart = std::max(j0, i);
          for (int64_t j = jstart; j < j1; ++j) crow[j] += w * arow[j];
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && tasks.size() > 1) {
    pool->ParallelFor(0, static_cast<int64_t>(tasks.size()), body);
  } else {
    body(0, static_cast<int64_t>(tasks.size()));
  }
  if (!worker_status.ok()) return worker_status;
  // Mirror upper triangle to lower.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) (*c)(j, i) = (*c)(i, j);
  }
  return Status::OK();
}

genbase::Status GemmNaive(const MatrixView& a, const MatrixView& b, Matrix* c,
                          ExecContext* ctx) {
  if (a.cols != b.rows || c->rows() != a.rows || c->cols() != b.cols) {
    return Status::InvalidArgument("gemm shape mismatch");
  }
  for (int64_t i = 0; i < a.rows; ++i) {
    if (ctx != nullptr && (i & 15) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    for (int64_t j = 0; j < b.cols; ++j) {
      double s = 0.0;
      // Column-strided access to B: the cache-hostile textbook loop.
      for (int64_t k = 0; k < a.cols; ++k) {
        s += a(i, k) * b(k, j);
      }
      (*c)(i, j) = s;
    }
  }
  return Status::OK();
}

genbase::Status SyrkNaive(const MatrixView& a, Matrix* c, ExecContext* ctx) {
  if (c->rows() != a.cols || c->cols() != a.cols) {
    return Status::InvalidArgument("syrk shape mismatch");
  }
  for (int64_t i = 0; i < a.cols; ++i) {
    if (ctx != nullptr && (i & 15) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    for (int64_t j = 0; j < a.cols; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < a.rows; ++k) {
        s += a(k, i) * a(k, j);
      }
      (*c)(i, j) = s;
    }
  }
  return Status::OK();
}

}  // namespace genbase::linalg
