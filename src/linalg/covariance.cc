#include "linalg/covariance.h"

#include <algorithm>
#include <vector>

#include "linalg/blas.h"

namespace genbase::linalg {

std::vector<double> ColumnMeans(const MatrixView& x) {
  std::vector<double> means(static_cast<size_t>(x.cols), 0.0);
  ColumnMeansInto(x, means.data());
  return means;
}

void ColumnMeansInto(const MatrixView& x, double* means) {
  std::fill_n(means, static_cast<size_t>(x.cols), 0.0);
  for (int64_t i = 0; i < x.rows; ++i) {
    const double* row = x.data + i * x.stride;
    for (int64_t j = 0; j < x.cols; ++j) means[j] += row[j];
  }
  const double inv = x.rows > 0 ? 1.0 / static_cast<double>(x.rows) : 0.0;
  for (int64_t j = 0; j < x.cols; ++j) means[j] *= inv;
}

genbase::Result<Matrix> CovarianceMatrix(const MatrixView& x,
                                         KernelQuality quality,
                                         ExecContext* ctx) {
  if (x.rows < 2) {
    return Status::InvalidArgument("covariance needs at least 2 samples");
  }
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;

  const std::vector<double> means = ColumnMeans(x);
  GENBASE_ASSIGN_OR_RETURN(Matrix cov,
                           Matrix::Create(x.cols, x.cols, tracker));
  if (quality == KernelQuality::kTuned) {
    // One-pass fused path: SyrkCentered subtracts the means inside the
    // panel packing, so the m x n centered copy the old implementation
    // materialized (and charged to the memory budget) no longer exists.
    GENBASE_RETURN_NOT_OK(SyrkCentered(x, means.data(), &cov, pool, ctx));
  } else {
    // The naive path models Mahout-style hand-rolled analytics: it still
    // materializes the centered matrix and runs the unblocked Syrk.
    GENBASE_ASSIGN_OR_RETURN(Matrix centered,
                             Matrix::Create(x.rows, x.cols, tracker));
    for (int64_t i = 0; i < x.rows; ++i) {
      const double* src = x.data + i * x.stride;
      double* dst = centered.Row(i);
      for (int64_t j = 0; j < x.cols; ++j) dst[j] = src[j] - means[j];
    }
    GENBASE_RETURN_NOT_OK(SyrkNaive(MatrixView(centered), &cov, ctx));
  }
  const double inv = 1.0 / static_cast<double>(x.rows - 1);
  for (int64_t i = 0; i < cov.size(); ++i) cov.data()[i] *= inv;
  return cov;
}

}  // namespace genbase::linalg
