#include "linalg/tridiag.h"

#include <algorithm>
#include <cmath>

namespace genbase::linalg {

namespace {

double Hypot2(double a, double b) { return std::hypot(a, b); }

}  // namespace

genbase::Status SymmetricTridiagonalEigen(std::vector<double>* diag,
                                          std::vector<double>* off,
                                          Matrix* z) {
  const int64_t n = static_cast<int64_t>(diag->size());
  if (n == 0) return Status::OK();
  if (static_cast<int64_t>(off->size()) < n) {
    return Status::InvalidArgument("off-diagonal vector too short");
  }
  if (z != nullptr && (z->rows() != n || z->cols() != n)) {
    return Status::InvalidArgument("eigenvector matrix must be n x n");
  }
  std::vector<double>& d = *diag;
  std::vector<double> e(off->begin(), off->end());
  // Shift e so e[i] couples d[i] and d[i+1]; e[n-1] = 0 sentinel.
  e.resize(static_cast<size_t>(n));
  e[static_cast<size_t>(n - 1)] = 0.0;

  for (int64_t l = 0; l < n; ++l) {
    int iter = 0;
    int64_t m;
    do {
      // Find a small subdiagonal element.
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iter == 50) {
          return Status::Internal("tridiagonal QL failed to converge");
        }
        // Wilkinson shift.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (int64_t i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = Hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (int64_t k = 0; k < n; ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && m - 1 >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, permuting eigenvectors alongside.
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return d[a] < d[b]; });
  std::vector<double> sorted_d(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) sorted_d[i] = d[order[i]];
  if (z != nullptr) {
    Matrix sorted_z(n, n);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < n; ++i) sorted_z(i, j) = (*z)(i, order[j]);
    }
    *z = std::move(sorted_z);
  }
  d = std::move(sorted_d);
  return Status::OK();
}

}  // namespace genbase::linalg
