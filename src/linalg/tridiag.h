#ifndef GENBASE_LINALG_TRIDIAG_H_
#define GENBASE_LINALG_TRIDIAG_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::linalg {

/// \brief Eigen decomposition of a symmetric tridiagonal matrix via the
/// implicit QL algorithm with Wilkinson shifts (EISPACK tql2 lineage).
///
/// On entry, diag has length n and off has length n (off[n-1] unused). On
/// success, diag holds the eigenvalues in ascending order. If z is non-null
/// it must be n x n (typically identity) and is overwritten with the
/// corresponding eigenvectors in its columns. Used to solve the projected
/// problem inside the Lanczos SVD of GenBase Query 4.
genbase::Status SymmetricTridiagonalEigen(std::vector<double>* diag,
                                          std::vector<double>* off,
                                          Matrix* z = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_TRIDIAG_H_
