#ifndef GENBASE_LINALG_MATRIX_H_
#define GENBASE_LINALG_MATRIX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "common/status.h"

namespace genbase::linalg {

/// \brief Dense row-major matrix of doubles. The single numeric container
/// shared by all analytics kernels.
///
/// Allocation can be charged to a MemoryTracker via Create(), so engine
/// memory budgets see analytics temporaries too (the paper observed
/// "temporary space allocation failed on the large data sizes").
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    GENBASE_CHECK(rows >= 0 && cols >= 0);
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
  // Copies duplicate the data but not the budget reservation (the copy is
  // untracked; use Create() + explicit copy for tracked duplicates).
  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {}
  Matrix& operator=(const Matrix& other) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    reservation_.ReleaseNow();
    return *this;
  }

  /// Tracker-charged allocation. Returns OutOfMemory if over budget.
  static genbase::Result<Matrix> Create(int64_t rows, int64_t cols,
                                        MemoryTracker* tracker) {
    const int64_t bytes = rows * cols * static_cast<int64_t>(sizeof(double));
    GENBASE_ASSIGN_OR_RETURN(auto reservation,
                             ScopedReservation::Acquire(tracker, bytes));
    Matrix m(rows, cols);
    m.reservation_ = std::move(reservation);
    return m;
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double& operator()(int64_t i, int64_t j) {
    GENBASE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double operator()(int64_t i, int64_t j) const {
    GENBASE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  double* Row(int64_t i) { return data_.data() + i * cols_; }
  const double* Row(int64_t i) const { return data_.data() + i * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  int64_t bytes() const {
    return size() * static_cast<int64_t>(sizeof(double));
  }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
  ScopedReservation reservation_;
};

/// \brief Non-owning read-only view (contiguous row-major with stride).
struct MatrixView {
  const double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;  // Leading dimension (elements between row starts).

  MatrixView() = default;
  MatrixView(const double* d, int64_t r, int64_t c, int64_t s)
      : data(d), rows(r), cols(c), stride(s) {}
  // NOLINTNEXTLINE(google-explicit-constructor): views are cheap adapters.
  MatrixView(const Matrix& m)
      : data(m.data()), rows(m.rows()), cols(m.cols()), stride(m.cols()) {}

  double operator()(int64_t i, int64_t j) const {
    return data[i * stride + j];
  }
};

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_MATRIX_H_
