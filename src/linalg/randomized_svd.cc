#include "linalg/randomized_svd.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/jacobi.h"
#include "linalg/qr.h"

namespace genbase::linalg {

genbase::Result<SvdResult> RandomizedSvd(const MatrixView& a,
                                         const RandomizedSvdOptions& options,
                                         ExecContext* ctx) {
  const int64_t m = a.rows;
  const int64_t n = a.cols;
  if (m == 0 || n == 0) return Status::InvalidArgument("empty matrix");
  const int k = static_cast<int>(std::min<int64_t>(options.rank, n));
  const int64_t sketch =
      std::min<int64_t>(n, std::min<int64_t>(m, k + options.oversample));
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;

  // Gaussian test matrix Omega (n x sketch) and the sample Y = A Omega.
  Rng rng(options.seed);
  GENBASE_ASSIGN_OR_RETURN(Matrix omega, Matrix::Create(n, sketch, tracker));
  for (int64_t i = 0; i < omega.size(); ++i) {
    omega.data()[i] = rng.Gaussian();
  }
  GENBASE_ASSIGN_OR_RETURN(Matrix y, Matrix::Create(m, sketch, tracker));
  GENBASE_RETURN_NOT_OK(Gemm(a, MatrixView(omega), &y, pool, ctx));

  // Power iterations with re-orthonormalization for numerical stability:
  // Y <- A (A^T Q(Y)).
  for (int it = 0; it < options.power_iterations; ++it) {
    GENBASE_ASSIGN_OR_RETURN(HouseholderQr yqr,
                             HouseholderQr::Factor(std::move(y), ctx));
    Matrix q = yqr.ThinQ();
    GENBASE_ASSIGN_OR_RETURN(Matrix z, Matrix::Create(n, sketch, tracker));
    GENBASE_RETURN_NOT_OK(GemmTransposeA(a, MatrixView(q), &z, pool, ctx));
    GENBASE_ASSIGN_OR_RETURN(y, Matrix::Create(m, sketch, tracker));
    GENBASE_RETURN_NOT_OK(Gemm(a, MatrixView(z), &y, pool, ctx));
  }

  // Orthonormal range basis Q (m x sketch).
  GENBASE_ASSIGN_OR_RETURN(HouseholderQr yqr,
                           HouseholderQr::Factor(std::move(y), ctx));
  Matrix q = yqr.ThinQ();

  // Projected problem: B = Q^T A (sketch x n); eigen-decompose B B^T.
  GENBASE_ASSIGN_OR_RETURN(Matrix b, Matrix::Create(sketch, n, tracker));
  GENBASE_RETURN_NOT_OK(GemmTransposeA(MatrixView(q), a, &b, pool, ctx));
  Matrix bbt(sketch, sketch);
  for (int64_t i = 0; i < sketch; ++i) {
    for (int64_t j = i; j < sketch; ++j) {
      const double v = Dot(b.Row(i), b.Row(j), n);
      bbt(i, j) = v;
      bbt(j, i) = v;
    }
  }
  GENBASE_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigen(bbt));

  SvdResult out;
  out.singular_values.resize(k);
  out.u = Matrix(m, k);
  out.v = Matrix(n, k);
  std::vector<double> ub(static_cast<size_t>(sketch));
  for (int i = 0; i < k; ++i) {
    const int64_t col = sketch - 1 - i;  // Largest eigenvalues last.
    const double sigma = std::sqrt(std::max(0.0, eig.values[col]));
    out.singular_values[static_cast<size_t>(i)] = sigma;
    for (int64_t t = 0; t < sketch; ++t) ub[t] = eig.vectors(t, col);
    // U = Q * U_B.
    for (int64_t r = 0; r < m; ++r) {
      out.u(r, i) = Dot(q.Row(r), ub.data(), sketch);
    }
    // V = B^T U_B / sigma.
    if (sigma > 1e-12) {
      for (int64_t c = 0; c < n; ++c) {
        double s = 0;
        for (int64_t t = 0; t < sketch; ++t) s += b(t, c) * ub[t];
        out.v(c, i) = s / sigma;
      }
    }
  }
  return out;
}

}  // namespace genbase::linalg
