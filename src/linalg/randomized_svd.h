#ifndef GENBASE_LINALG_RANDOMIZED_SVD_H_
#define GENBASE_LINALG_RANDOMIZED_SVD_H_

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace genbase::linalg {

/// \brief Options for the randomized range-finder SVD.
struct RandomizedSvdOptions {
  int rank = 50;
  int oversample = 8;       ///< Extra sketch columns beyond the rank.
  int power_iterations = 2; ///< Subspace iterations (sharpen the sketch).
  uint64_t seed = 42;
};

/// \brief Randomized truncated SVD (Halko-Martinsson-Tropp): sketch the
/// range with a Gaussian test matrix, orthonormalize, and solve the small
/// projected problem exactly.
///
/// This is the paper's Section 6.3 future-work direction realized:
/// "particularly for many matrix factorization ... problems, there exist
/// efficient approximate algorithms that parallelize well ... approximation
/// algorithms may have allowed us to scale to the 60K x 70K dataset that
/// none of the systems we tested could process in under two hours." One
/// pass of O(m n (k+p)) work replaces Lanczos' ~2k+ operator applications;
/// the ablation bench quantifies the trade.
genbase::Result<SvdResult> RandomizedSvd(const MatrixView& a,
                                         const RandomizedSvdOptions& options,
                                         ExecContext* ctx = nullptr);

}  // namespace genbase::linalg

#endif  // GENBASE_LINALG_RANDOMIZED_SVD_H_
