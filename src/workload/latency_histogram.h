#ifndef GENBASE_WORKLOAD_LATENCY_HISTOGRAM_H_
#define GENBASE_WORKLOAD_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace genbase::workload {

/// \brief Log-bucketed latency histogram, HdrHistogram-style but sized for
/// this benchmark: buckets grow geometrically by ~5% from 1 microsecond to
/// beyond the per-op timeout, so any recorded latency is resolved to within
/// one bucket width (<= 5% relative error) at O(1) record cost and a few KB
/// of memory. Values outside the tracked range clamp to the edge buckets
/// (exact min/max/sum are kept separately and stay exact).
///
/// Not internally synchronized: each workload client records into its own
/// histogram and the runner merges them after the measured phase.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double seconds);
  void Merge(const LatencyHistogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;  ///< 0 when empty.
  double max() const;  ///< 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Latency at quantile `q` in [0, 1]: the representative value (geometric
  /// bucket midpoint) of the bucket containing the q-th quantile observation
  /// (nearest-rank). Defined for every input, never UB: 0 when empty,
  /// exactly min() at q = 0, exactly max() at q = 1, and out-of-range q
  /// clamps to [0, 1].
  double Quantile(double q) const;

  /// Quantile on the percent scale: Percentile(p) == Quantile(p / 100).
  double Percentile(double p) const { return Quantile(p / 100.0); }

 private:
  int BucketFor(double seconds) const;
  double BucketValue(int bucket) const;

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace genbase::workload

#endif  // GENBASE_WORKLOAD_LATENCY_HISTOGRAM_H_
