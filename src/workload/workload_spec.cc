#include "workload/workload_spec.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace genbase::workload {

const char* ClientModelName(ClientModel model) {
  switch (model) {
    case ClientModel::kClosedLoop:
      return "closed-loop";
    case ClientModel::kOpenLoopPoisson:
      return "open-loop/poisson";
    case ClientModel::kOpenLoopUniform:
      return "open-loop/uniform";
  }
  return "?";
}

genbase::Status WorkloadSpec::Validate() const {
  if (clients < 1) {
    return genbase::Status::InvalidArgument("workload: clients must be >= 1");
  }
  if (measured_ops < 1) {
    return genbase::Status::InvalidArgument(
        "workload: measured_ops must be >= 1");
  }
  if (warmup_ops < 0) {
    return genbase::Status::InvalidArgument(
        "workload: warmup_ops must be >= 0");
  }
  if (timeout_seconds <= 0) {
    return genbase::Status::InvalidArgument(
        "workload: timeout_seconds must be positive");
  }
  if (think_time_s < 0) {
    return genbase::Status::InvalidArgument(
        "workload: think_time_s must be >= 0");
  }
  if (model != ClientModel::kClosedLoop && arrival_rate_qps <= 0) {
    return genbase::Status::InvalidArgument(
        "workload: open-loop models need arrival_rate_qps > 0");
  }
  if (param_variants < 1) {
    return genbase::Status::InvalidArgument(
        "workload: param_variants must be >= 1");
  }
  double weight_sum = 0;
  for (const auto& entry : mix) {
    if (entry.weight < 0 || !std::isfinite(entry.weight)) {
      return genbase::Status::InvalidArgument(
          "workload: mix weights must be finite and >= 0");
    }
    weight_sum += entry.weight;
  }
  if (!mix.empty() && weight_sum <= 0) {
    return genbase::Status::InvalidArgument(
        "workload: mix weights must not all be zero");
  }
  return genbase::Status::OK();
}

std::vector<QueryMixEntry> WorkloadSpec::NormalizedMix() const {
  std::vector<QueryMixEntry> entries = mix;
  double sum = 0;
  for (const auto& e : entries) sum += std::max(0.0, e.weight);
  if (entries.empty() || sum <= 0) {
    entries.clear();
    for (core::QueryId q : core::kAllQueries) entries.push_back({q, 1.0});
    sum = static_cast<double>(entries.size());
  }
  for (auto& e : entries) e.weight = std::max(0.0, e.weight) / sum;
  return entries;
}

core::QueryParams VariantParams(const core::QueryParams& base, int variant) {
  if (variant <= 0) return base;
  core::QueryParams p = base;
  // Mild arithmetic perturbations: each stays valid down to the tiny test
  // scales (selections stay non-empty, ranks stay >= 2), and each changes
  // at least one query's answer so cached results cannot be shared across
  // variants.
  p.function_threshold =
      std::max<int64_t>(64, base.function_threshold - 8 * (variant % 8));
  p.covariance_quantile = std::clamp(
      base.covariance_quantile - 0.02 * (variant % 4), 0.50, 0.99);
  p.max_age = base.max_age + 3 * (variant % 3);
  p.svd_rank = std::max(2, base.svd_rank - (variant % 4));
  // The visible perturbations above cycle (period 24); this strictly
  // monotone microscopic offset keeps every variant's params bit-distinct —
  // hence a distinct serving-cache key — at any variant count. 1e-9
  // relative is far below any p-value granularity the Wilcoxon test
  // produces, and reference truth is computed with the same params, so
  // verification is unaffected either way.
  p.significance = base.significance * (1.0 + 1e-9 * variant);
  return p;
}

std::vector<ScheduledOp> BuildSchedule(const WorkloadSpec& spec) {
  const std::vector<QueryMixEntry> mix = spec.NormalizedMix();
  const int total = spec.warmup_ops + spec.measured_ops;
  std::vector<ScheduledOp> ops;
  ops.reserve(total);

  Rng mix_rng(SeedFromTag("workload/mix", SeedFromTag(spec.name), spec.seed));
  Rng arrival_rng(
      SeedFromTag("workload/arrival", SeedFromTag(spec.name), spec.seed));
  Rng variant_rng(
      SeedFromTag("workload/variant", SeedFromTag(spec.name), spec.seed));

  // Fallback for the inverse-CDF draw below: the last entry with positive
  // weight, so floating-point residue in the cumulative sum can never
  // schedule a query the spec excluded with weight 0.
  core::QueryId fallback = mix.back().query;
  for (const auto& e : mix) {
    if (e.weight > 0) fallback = e.query;
  }

  double arrival = 0.0;
  for (int i = 0; i < total; ++i) {
    ScheduledOp op;
    // Weighted draw by inverse CDF over the normalized mix.
    const double u = mix_rng.Uniform();
    double cumulative = 0.0;
    op.query = fallback;
    for (const auto& e : mix) {
      if (e.weight <= 0) continue;
      cumulative += e.weight;
      if (u < cumulative) {
        op.query = e.query;
        break;
      }
    }
    if (spec.param_variants > 1) {
      op.variant = static_cast<int>(
          variant_rng.UniformInt(0, spec.param_variants - 1));
    }
    // Warm-up operations are issued immediately regardless of model: they
    // exist to populate caches, not to shape arrival timing. Arrival
    // offsets are relative to the *measured* phase start, so interarrival
    // accumulation begins at the warm-up boundary.
    if (i < spec.warmup_ops) {
      ops.push_back(op);
      continue;
    }
    switch (spec.model) {
      case ClientModel::kClosedLoop:
        break;
      case ClientModel::kOpenLoopPoisson: {
        // Exponential interarrival at the aggregate rate.
        const double u01 = arrival_rng.Uniform();
        arrival += -std::log(1.0 - u01) / spec.arrival_rate_qps;
        op.arrival_offset_s = arrival;
        break;
      }
      case ClientModel::kOpenLoopUniform:
        arrival += 1.0 / spec.arrival_rate_qps;
        op.arrival_offset_s = arrival;
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace genbase::workload
