#include "workload/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace genbase::workload {

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string FormatMillis(double seconds) {
  const double ms = seconds * 1e3;
  char buf[32];
  if (ms < 10) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  } else if (ms < 100) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fms", ms);
  }
  return buf;
}

std::string FormatQps(double qps) {
  char buf[32];
  if (qps < 10) {
    std::snprintf(buf, sizeof(buf), "%.2f", qps);
  } else if (qps < 100) {
    std::snprintf(buf, sizeof(buf), "%.1f", qps);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

void PrintGrid(const std::string& title, const std::string& x_label,
               const std::vector<std::string>& x_values,
               const std::vector<std::string>& engines,
               const std::vector<std::vector<std::string>>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  // Column widths fit the widest cell (floor 16 keeps the classic figures'
  // layout stable).
  std::vector<int> widths(engines.size(), 16);
  for (size_t e = 0; e < engines.size(); ++e) {
    widths[e] = std::max(widths[e], static_cast<int>(engines[e].size()));
    for (size_t x = 0; x < cells.size(); ++x) {
      widths[e] = std::max(widths[e], static_cast<int>(cells[x][e].size()));
    }
  }
  std::printf("%-28s", (x_label + " \\ system").c_str());
  for (size_t e = 0; e < engines.size(); ++e) {
    std::printf(" %*s", widths[e], engines[e].c_str());
  }
  std::printf("\n");
  for (size_t x = 0; x < x_values.size(); ++x) {
    std::printf("%-28s", x_values[x].c_str());
    for (size_t e = 0; e < engines.size(); ++e) {
      std::printf(" %*s", widths[e], cells[x][e].c_str());
    }
    std::printf("\n");
  }
}

void OpStats::MergeFrom(const OpStats& other) {
  ops += other.ops;
  errors += other.errors;
  infs += other.infs;
  verify_failures += other.verify_failures;
  shed_queue_full += other.shed_queue_full;
  shed_timeout += other.shed_timeout;
  latency.Merge(other.latency);
  queue_delay.Merge(other.queue_delay);
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    stage[s].Merge(other.stage[s]);
    stage_wall_s[s] += other.stage_wall_s[s];
    stage_cpu_s[s] += other.stage_cpu_s[s];
  }
  e2e_latency.Merge(other.e2e_latency);
  dm_s += other.dm_s;
  analytics_s += other.analytics_s;
  glue_s += other.glue_s;
  modeled_s += other.modeled_s;
}

std::string WorkloadReport::Summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "%s %s x%d%s (%s): %s qps  p50=%s p95=%s p99=%s  "
      "ops=%lld err=%lld inf=%lld badverify=%lld shed=%lld",
      engine.c_str(), workload_name.c_str(), clients,
      shards > 1 ? ("/s" + std::to_string(shards)).c_str() : "",
      ClientModelName(model), FormatQps(achieved_qps()).c_str(),
      FormatMillis(total.latency.Percentile(50)).c_str(),
      FormatMillis(total.latency.Percentile(95)).c_str(),
      FormatMillis(total.latency.Percentile(99)).c_str(),
      static_cast<long long>(total.ops),
      static_cast<long long>(total.errors),
      static_cast<long long>(total.infs),
      static_cast<long long>(total.verify_failures),
      static_cast<long long>(total.shed()));
  return buf;
}

std::string WorkloadReport::GridCell() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%sqps %s/%s/%s",
                FormatQps(achieved_qps()).c_str(),
                FormatMillis(total.latency.Percentile(50)).c_str(),
                FormatMillis(total.latency.Percentile(95)).c_str(),
                FormatMillis(total.latency.Percentile(99)).c_str());
  return buf;
}

void WorkloadReport::Print() const {
  std::printf("\n--- workload report: %s ---\n", Summary().c_str());
  if (!kernel_backend.empty()) {
    std::printf("  kernel backend: %s\n", kernel_backend.c_str());
  }
  std::printf("  wall=%ss (modeled %ss)  mean=%s  p90=%s  p999=%s  max=%s\n",
              FormatSeconds(wall_seconds).c_str(),
              FormatSeconds(modeled_wall_seconds()).c_str(),
              FormatMillis(total.latency.mean()).c_str(),
              FormatMillis(total.latency.Percentile(90)).c_str(),
              FormatMillis(total.latency.Percentile(99.9)).c_str(),
              FormatMillis(total.latency.max()).c_str());
  if (offered_qps > 0) {
    std::printf("  offered=%s qps vs goodput=%s qps (real clock)  shed=%lld "
                "(queue-full %lld, timeout %lld)\n",
                FormatQps(offered_qps).c_str(),
                FormatQps(real_goodput_qps()).c_str(),
                static_cast<long long>(total.shed()),
                static_cast<long long>(total.shed_queue_full),
                static_cast<long long>(total.shed_timeout));
  }
  // Per-stage attribution (p50/p99 per request stage): where a served op's
  // time went. Stages that never saw time are printed as 0 — the row shape
  // stays greppable across configurations.
  if (total.e2e_latency.count() > 0) {
    std::printf("  stages p50/p99:");
    for (int s = 0; s < obs::kNumRequestStages; ++s) {
      std::printf(" %s=%s/%s",
                  obs::RequestStageName(static_cast<obs::RequestStage>(s)),
                  FormatMillis(total.stage[s].Quantile(0.5)).c_str(),
                  FormatMillis(total.stage[s].Quantile(0.99)).c_str());
    }
    std::printf("  e2e=%s/%s\n",
                FormatMillis(total.e2e_latency.Quantile(0.5)).c_str(),
                FormatMillis(total.e2e_latency.Quantile(0.99)).c_str());
  }
  // Resource attribution (profiled runs only): what fraction of each stage's
  // wall time was on-CPU. Blocking stages read near 0, compute stages near 1;
  // a compute stage drifting down means contention, not work.
  if (profiled && total.e2e_latency.count() > 0) {
    std::printf("  stages cpu/wall:");
    for (int s = 0; s < obs::kNumRequestStages; ++s) {
      if (total.stage_wall_s[s] > 0) {
        std::printf(" %s=%.2f",
                    obs::RequestStageName(static_cast<obs::RequestStage>(s)),
                    total.stage_cpu_s[s] / total.stage_wall_s[s]);
      } else {
        std::printf(" %s=-",
                    obs::RequestStageName(static_cast<obs::RequestStage>(s)));
      }
    }
    std::printf("\n");
    if (execute_perf.reading.valid) {
      std::printf("  execute perf: ipc=%.2f cache-miss=%.1f%% "
                  "branch-miss/kinst=%.2f (%lld scopes)\n",
                  execute_perf.reading.ipc(),
                  execute_perf.reading.cache_miss_rate() * 100.0,
                  execute_perf.reading.instructions > 0
                      ? 1e3 * execute_perf.reading.branch_misses /
                            static_cast<double>(
                                execute_perf.reading.instructions)
                      : 0.0,
                  static_cast<long long>(execute_perf.samples));
    } else if (profiled) {
      std::printf("  execute perf: counters unavailable "
                  "(perf_event_open denied or no PMU)\n");
    }
  }
  // Only worth a line when queueing was actually observed: closed-loop
  // direct-engine runs record all-zero delays by construction.
  if (total.queue_delay.max() > 0) {
    std::printf("  queue delay: mean=%s p50=%s p99=%s max=%s "
                "(part of latency; own clock for honest saturated tails)\n",
                FormatMillis(total.queue_delay.mean()).c_str(),
                FormatMillis(total.queue_delay.Percentile(50)).c_str(),
                FormatMillis(total.queue_delay.Percentile(99)).c_str(),
                FormatMillis(total.queue_delay.max()).c_str());
  }
  if (has_serving) {
    std::printf("  serving: cache hit=%lld miss=%lld (ratio %.2f, "
                "%lld entries, %lld evicted, %lld invalidated, "
                "%lld oversize)  admitted=%lld "
                "shed=%lld+%lld peakq=%lld limit=%lld\n",
                static_cast<long long>(serving.cache.hits),
                static_cast<long long>(serving.cache.misses),
                serving.cache.hit_ratio(),
                static_cast<long long>(serving.cache.entries),
                static_cast<long long>(serving.cache.evictions),
                static_cast<long long>(serving.cache.invalidated),
                static_cast<long long>(serving.cache.rejected_oversize),
                static_cast<long long>(serving.admission.admitted),
                static_cast<long long>(serving.admission.shed_queue_full),
                static_cast<long long>(serving.admission.shed_timeout),
                static_cast<long long>(serving.admission.peak_queue),
                static_cast<long long>(serving.admission.current_limit));
    // Churn/stampede lines only when those layers saw traffic: the classic
    // closed-loop figures stay byte-stable otherwise.
    if (serving.flight.leaders > 0 || serving.flight.coalesced > 0) {
      std::printf("  single-flight: leaders=%lld coalesced=%lld "
                  "(served=%lld, fallbacks=%lld, shed=%lld)\n",
                  static_cast<long long>(serving.flight.leaders),
                  static_cast<long long>(serving.flight.coalesced),
                  static_cast<long long>(serving.flight.coalesced_served),
                  static_cast<long long>(serving.flight.follower_fallbacks),
                  static_cast<long long>(serving.flight.shed_wait_timeout));
    }
    if (!serving.admission.shed_by_class.empty()) {
      std::printf("  shed by class:");
      for (const auto& [class_id, shed] : serving.admission.shed_by_class) {
        std::printf(" %s=%lld",
                    core::QueryName(static_cast<core::QueryId>(class_id)),
                    static_cast<long long>(shed));
      }
      std::printf("\n");
    }
    if (serving.reloads > 0 || serving.stale_hits > 0) {
      std::printf("  churn: reloads=%lld stale_hits=%lld (must be 0)\n",
                  static_cast<long long>(serving.reloads),
                  static_cast<long long>(serving.stale_hits));
    }
    // Fault-tolerance line only when that machinery actually engaged — the
    // no-injector, no-retry configurations stay byte-stable.
    if (serving.retry.retries > 0 || serving.retry.hedges > 0 ||
        serving.retry.retry_deadline_giveups > 0 ||
        serving.admission.shed_brownout > 0 || serving.faults.total() > 0) {
      std::printf("  fault tolerance: retries=%lld (recovered=%lld, "
                  "giveups=%lld) hedges=%lld (wins=%lld) "
                  "shed_brownout=%lld injected=%lld\n",
                  static_cast<long long>(serving.retry.retries),
                  static_cast<long long>(serving.retry.retry_successes),
                  static_cast<long long>(serving.retry.retry_deadline_giveups),
                  static_cast<long long>(serving.retry.hedges),
                  static_cast<long long>(serving.retry.hedge_wins),
                  static_cast<long long>(serving.admission.shed_brownout),
                  static_cast<long long>(serving.faults.total()));
    }
    for (size_t s = 0; s < serving.shards.size(); ++s) {
      const serving::ShardStats& st = serving.shards[s];
      std::printf("    shard %zu: ops=%lld busy=%ss err=%lld inf=%lld", s,
                  static_cast<long long>(st.ops),
                  FormatSeconds(st.busy_s).c_str(),
                  static_cast<long long>(st.errors),
                  static_cast<long long>(st.infs));
      if (st.breaker_opens > 0 ||
          st.health != serving::ShardHealth::kHealthy) {
        std::printf(" health=%s breaker_opens=%lld",
                    serving::ShardHealthName(st.health),
                    static_cast<long long>(st.breaker_opens));
      }
      std::printf("\n");
    }
  }
  if (has_plan) {
    std::printf("  plan: compiles=%lld hits=%lld executes=%lld "
                "compile=%s reused=%lldB peak=%.0fB predicted=%.0fB%s\n",
                static_cast<long long>(plan.compiles),
                static_cast<long long>(plan.cache_hits),
                static_cast<long long>(plan.executes),
                FormatMillis(plan.compile_ns * 1e-9).c_str(),
                static_cast<long long>(plan.reused_bytes),
                plan.peak_bytes, plan.predicted_peak_bytes,
                plan.peak_mismatches > 0 ? "  PEAK MISMATCH" : "");
  }
  std::printf("  %-14s %7s %6s %5s %5s %5s %9s %9s %9s  %9s %9s %9s\n",
              "query", "ops", "err", "inf", "bad", "shed", "p50", "p95",
              "p99", "dm(s)", "analyt(s)", "glue(s)");
  for (const auto& [query, stats] : per_query) {
    std::printf(
        "  %-14s %7lld %6lld %5lld %5lld %5lld %9s %9s %9s  %9s %9s %9s\n",
                core::QueryName(query), static_cast<long long>(stats.ops),
                static_cast<long long>(stats.errors),
                static_cast<long long>(stats.infs),
                static_cast<long long>(stats.verify_failures),
                static_cast<long long>(stats.shed()),
                FormatMillis(stats.latency.Percentile(50)).c_str(),
                FormatMillis(stats.latency.Percentile(95)).c_str(),
                FormatMillis(stats.latency.Percentile(99)).c_str(),
                FormatSeconds(stats.dm_s).c_str(),
                FormatSeconds(stats.analytics_s).c_str(),
                FormatSeconds(stats.glue_s).c_str());
  }
}

/// --- JSON ---------------------------------------------------------------------
/// Hand-rolled emitter: every name is a known ASCII literal and the only
/// string values are engine/workload names, so escaping is limited to the
/// characters that could actually break the document.

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendKv(std::string* out, const char* key, double value) {
  char buf[64];
  // %.17g round-trips doubles; JSON has no inf/nan, clamp to null.
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, value);
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\":null", key);
  }
  out->append(buf);
}

void AppendKv(std::string* out, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                static_cast<long long>(value));
  out->append(buf);
}

void AppendHistogram(std::string* out, const char* key,
                     const LatencyHistogram& h) {
  out->append("\"").append(key).append("\":{");
  AppendKv(out, "count", h.count());
  out->push_back(',');
  AppendKv(out, "mean_s", h.mean());
  out->push_back(',');
  AppendKv(out, "min_s", h.min());
  out->push_back(',');
  AppendKv(out, "max_s", h.max());
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    char name[16];
    std::snprintf(name, sizeof(name), p == 99.9 ? "p999_s" : "p%.0f_s", p);
    out->push_back(',');
    AppendKv(out, name, h.Percentile(p));
  }
  out->push_back('}');
}

void AppendOpStats(std::string* out, const OpStats& stats) {
  out->push_back('{');
  AppendKv(out, "ops", stats.ops);
  out->push_back(',');
  AppendKv(out, "errors", stats.errors);
  out->push_back(',');
  AppendKv(out, "infs", stats.infs);
  out->push_back(',');
  AppendKv(out, "verify_failures", stats.verify_failures);
  out->push_back(',');
  AppendKv(out, "shed_queue_full", stats.shed_queue_full);
  out->push_back(',');
  AppendKv(out, "shed_timeout", stats.shed_timeout);
  out->push_back(',');
  AppendKv(out, "dm_s", stats.dm_s);
  out->push_back(',');
  AppendKv(out, "analytics_s", stats.analytics_s);
  out->push_back(',');
  AppendKv(out, "glue_s", stats.glue_s);
  out->push_back(',');
  AppendKv(out, "modeled_s", stats.modeled_s);
  out->push_back(',');
  AppendHistogram(out, "latency", stats.latency);
  out->push_back(',');
  AppendHistogram(out, "queue_delay", stats.queue_delay);
  out->append(",\"stages\":{");
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    if (s > 0) out->push_back(',');
    AppendHistogram(out,
                    obs::RequestStageName(static_cast<obs::RequestStage>(s)),
                    stats.stage[s]);
  }
  out->push_back('}');
  out->append(",\"stage_wall_s\":{");
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    if (s > 0) out->push_back(',');
    AppendKv(out, obs::RequestStageName(static_cast<obs::RequestStage>(s)),
             stats.stage_wall_s[s]);
  }
  out->append("},\"stage_cpu_s\":{");
  for (int s = 0; s < obs::kNumRequestStages; ++s) {
    if (s > 0) out->push_back(',');
    AppendKv(out, obs::RequestStageName(static_cast<obs::RequestStage>(s)),
             stats.stage_cpu_s[s]);
  }
  out->push_back('}');
  out->push_back(',');
  AppendHistogram(out, "e2e_latency", stats.e2e_latency);
  out->push_back('}');
}

}  // namespace

std::string WorkloadReport::ToJson() const {
  std::string out;
  out.reserve(2048);
  out.push_back('{');
  out.append("\"engine\":");
  AppendEscaped(&out, engine);
  out.append(",\"workload\":");
  AppendEscaped(&out, workload_name);
  out.append(",\"model\":");
  AppendEscaped(&out, ClientModelName(model));
  out.push_back(',');
  AppendKv(&out, "clients", static_cast<int64_t>(clients));
  out.push_back(',');
  AppendKv(&out, "shards", static_cast<int64_t>(shards));
  out.push_back(',');
  AppendKv(&out, "param_variants", static_cast<int64_t>(param_variants));
  out.push_back(',');
  AppendKv(&out, "seed", static_cast<int64_t>(seed));
  out.append(",\"kernel_backend\":");
  AppendEscaped(&out, kernel_backend);
  out.push_back(',');
  AppendKv(&out, "wall_seconds", wall_seconds);
  out.push_back(',');
  AppendKv(&out, "modeled_wall_seconds", modeled_wall_seconds());
  out.push_back(',');
  AppendKv(&out, "offered_qps", offered_qps);
  out.push_back(',');
  AppendKv(&out, "achieved_qps", achieved_qps());
  out.push_back(',');
  AppendKv(&out, "real_goodput_qps", real_goodput_qps());
  out.append(",\"profiled\":");
  out.append(profiled ? "true" : "false");
  out.append(",\"execute_perf\":");
  if (profiled) {
    // Counter JSON carries its own null fields when counters were
    // unavailable; the samples count distinguishes "no scopes ran" from
    // "scopes ran but the PMU was closed".
    std::string perf = execute_perf.reading.ToJson();
    perf.insert(perf.size() - 1,
                ",\"samples\":" + std::to_string(execute_perf.samples));
    out.append(perf);
  } else {
    out.append("null");
  }
  out.append(",\"total\":");
  AppendOpStats(&out, total);
  out.append(",\"per_query\":{");
  bool first = true;
  for (const auto& [query, stats] : per_query) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(core::QueryName(query));
    out.append("\":");
    AppendOpStats(&out, stats);
  }
  out.push_back('}');
  if (has_serving) {
    out.append(",\"serving\":{\"cache\":{");
    AppendKv(&out, "hits", serving.cache.hits);
    out.push_back(',');
    AppendKv(&out, "misses", serving.cache.misses);
    out.push_back(',');
    AppendKv(&out, "hit_ratio", serving.cache.hit_ratio());
    out.push_back(',');
    AppendKv(&out, "insertions", serving.cache.insertions);
    out.push_back(',');
    AppendKv(&out, "evictions", serving.cache.evictions);
    out.push_back(',');
    AppendKv(&out, "invalidated", serving.cache.invalidated);
    out.push_back(',');
    AppendKv(&out, "rejected_oversize", serving.cache.rejected_oversize);
    out.push_back(',');
    AppendKv(&out, "entries", serving.cache.entries);
    out.push_back(',');
    AppendKv(&out, "bytes", serving.cache.bytes);
    out.append("},\"admission\":{");
    AppendKv(&out, "admitted", serving.admission.admitted);
    out.push_back(',');
    AppendKv(&out, "shed_queue_full", serving.admission.shed_queue_full);
    out.push_back(',');
    AppendKv(&out, "shed_timeout", serving.admission.shed_timeout);
    out.push_back(',');
    AppendKv(&out, "shed_brownout", serving.admission.shed_brownout);
    out.push_back(',');
    AppendKv(&out, "peak_queue", serving.admission.peak_queue);
    out.push_back(',');
    AppendKv(&out, "current_limit", serving.admission.current_limit);
    out.append(",\"shed_by_class\":{");
    bool first_class = true;
    for (const auto& [class_id, shed] : serving.admission.shed_by_class) {
      if (!first_class) out.push_back(',');
      first_class = false;
      out.push_back('"');
      out.append(core::QueryName(static_cast<core::QueryId>(class_id)));
      out.append("\":");
      out.append(std::to_string(shed));
    }
    out.append("}},\"single_flight\":{");
    AppendKv(&out, "leaders", serving.flight.leaders);
    out.push_back(',');
    AppendKv(&out, "coalesced", serving.flight.coalesced);
    out.push_back(',');
    AppendKv(&out, "coalesced_served", serving.flight.coalesced_served);
    out.push_back(',');
    AppendKv(&out, "follower_fallbacks", serving.flight.follower_fallbacks);
    out.push_back(',');
    AppendKv(&out, "shed_wait_timeout", serving.flight.shed_wait_timeout);
    out.append("},\"retry\":{");
    AppendKv(&out, "retries", serving.retry.retries);
    out.push_back(',');
    AppendKv(&out, "retry_successes", serving.retry.retry_successes);
    out.push_back(',');
    AppendKv(&out, "retry_deadline_giveups",
             serving.retry.retry_deadline_giveups);
    out.push_back(',');
    AppendKv(&out, "hedges", serving.retry.hedges);
    out.push_back(',');
    AppendKv(&out, "hedge_wins", serving.retry.hedge_wins);
    out.append("},\"faults\":{");
    AppendKv(&out, "crashes", serving.faults.crashes);
    out.push_back(',');
    AppendKv(&out, "recoveries", serving.faults.recoveries);
    out.push_back(',');
    AppendKv(&out, "latency_spikes", serving.faults.latency_spikes);
    out.push_back(',');
    AppendKv(&out, "transient_errors", serving.faults.transient_errors);
    out.push_back(',');
    AppendKv(&out, "reload_failures", serving.faults.reload_failures);
    out.append("},");
    AppendKv(&out, "stale_hits", serving.stale_hits);
    out.push_back(',');
    AppendKv(&out, "reloads", serving.reloads);
    out.append(",\"shards\":[");
    for (size_t s = 0; s < serving.shards.size(); ++s) {
      if (s > 0) out.push_back(',');
      out.push_back('{');
      AppendKv(&out, "ops", serving.shards[s].ops);
      out.push_back(',');
      AppendKv(&out, "errors", serving.shards[s].errors);
      out.push_back(',');
      AppendKv(&out, "infs", serving.shards[s].infs);
      out.push_back(',');
      AppendKv(&out, "busy_s", serving.shards[s].busy_s);
      out.push_back(',');
      AppendKv(&out, "breaker_opens", serving.shards[s].breaker_opens);
      out.append(",\"health\":\"");
      out.append(serving::ShardHealthName(serving.shards[s].health));
      out.push_back('"');
      out.push_back('}');
    }
    out.append("]}");
  }
  if (has_plan) {
    out.append(",\"plan\":{");
    AppendKv(&out, "compiles", plan.compiles);
    out.push_back(',');
    AppendKv(&out, "cache_hits", plan.cache_hits);
    out.push_back(',');
    AppendKv(&out, "executes", plan.executes);
    out.push_back(',');
    AppendKv(&out, "compile_ns", plan.compile_ns);
    out.push_back(',');
    AppendKv(&out, "reused_bytes", plan.reused_bytes);
    out.push_back(',');
    AppendKv(&out, "peak_mismatches", plan.peak_mismatches);
    out.push_back(',');
    AppendKv(&out, "peak_bytes", plan.peak_bytes);
    out.push_back(',');
    AppendKv(&out, "predicted_peak_bytes", plan.predicted_peak_bytes);
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

}  // namespace genbase::workload
