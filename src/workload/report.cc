#include "workload/report.h"

#include <algorithm>
#include <cstdio>

namespace genbase::workload {

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string FormatMillis(double seconds) {
  const double ms = seconds * 1e3;
  char buf[32];
  if (ms < 10) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  } else if (ms < 100) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fms", ms);
  }
  return buf;
}

std::string FormatQps(double qps) {
  char buf[32];
  if (qps < 10) {
    std::snprintf(buf, sizeof(buf), "%.2f", qps);
  } else if (qps < 100) {
    std::snprintf(buf, sizeof(buf), "%.1f", qps);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

void PrintGrid(const std::string& title, const std::string& x_label,
               const std::vector<std::string>& x_values,
               const std::vector<std::string>& engines,
               const std::vector<std::vector<std::string>>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  // Column widths fit the widest cell (floor 16 keeps the classic figures'
  // layout stable).
  std::vector<int> widths(engines.size(), 16);
  for (size_t e = 0; e < engines.size(); ++e) {
    widths[e] = std::max(widths[e], static_cast<int>(engines[e].size()));
    for (size_t x = 0; x < cells.size(); ++x) {
      widths[e] = std::max(widths[e], static_cast<int>(cells[x][e].size()));
    }
  }
  std::printf("%-28s", (x_label + " \\ system").c_str());
  for (size_t e = 0; e < engines.size(); ++e) {
    std::printf(" %*s", widths[e], engines[e].c_str());
  }
  std::printf("\n");
  for (size_t x = 0; x < x_values.size(); ++x) {
    std::printf("%-28s", x_values[x].c_str());
    for (size_t e = 0; e < engines.size(); ++e) {
      std::printf(" %*s", widths[e], cells[x][e].c_str());
    }
    std::printf("\n");
  }
}

void OpStats::MergeFrom(const OpStats& other) {
  ops += other.ops;
  errors += other.errors;
  infs += other.infs;
  verify_failures += other.verify_failures;
  latency.Merge(other.latency);
  dm_s += other.dm_s;
  analytics_s += other.analytics_s;
  glue_s += other.glue_s;
  modeled_s += other.modeled_s;
}

std::string WorkloadReport::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%s %s x%d (%s): %s qps  p50=%s p95=%s p99=%s  "
      "ops=%lld err=%lld inf=%lld badverify=%lld",
      engine.c_str(), workload_name.c_str(), clients, ClientModelName(model),
      FormatQps(achieved_qps()).c_str(),
      FormatMillis(total.latency.Percentile(50)).c_str(),
      FormatMillis(total.latency.Percentile(95)).c_str(),
      FormatMillis(total.latency.Percentile(99)).c_str(),
      static_cast<long long>(total.ops),
      static_cast<long long>(total.errors),
      static_cast<long long>(total.infs),
      static_cast<long long>(total.verify_failures));
  return buf;
}

std::string WorkloadReport::GridCell() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%sqps %s/%s/%s",
                FormatQps(achieved_qps()).c_str(),
                FormatMillis(total.latency.Percentile(50)).c_str(),
                FormatMillis(total.latency.Percentile(95)).c_str(),
                FormatMillis(total.latency.Percentile(99)).c_str());
  return buf;
}

void WorkloadReport::Print() const {
  std::printf("\n--- workload report: %s ---\n", Summary().c_str());
  std::printf("  wall=%ss (modeled %ss)  mean=%s  p90=%s  p999=%s  max=%s\n",
              FormatSeconds(wall_seconds).c_str(),
              FormatSeconds(modeled_wall_seconds()).c_str(),
              FormatMillis(total.latency.mean()).c_str(),
              FormatMillis(total.latency.Percentile(90)).c_str(),
              FormatMillis(total.latency.Percentile(99.9)).c_str(),
              FormatMillis(total.latency.max()).c_str());
  std::printf("  %-14s %7s %6s %5s %5s %9s %9s %9s  %9s %9s %9s\n", "query",
              "ops", "err", "inf", "bad", "p50", "p95", "p99", "dm(s)",
              "analyt(s)", "glue(s)");
  for (const auto& [query, stats] : per_query) {
    std::printf("  %-14s %7lld %6lld %5lld %5lld %9s %9s %9s  %9s %9s %9s\n",
                core::QueryName(query), static_cast<long long>(stats.ops),
                static_cast<long long>(stats.errors),
                static_cast<long long>(stats.infs),
                static_cast<long long>(stats.verify_failures),
                FormatMillis(stats.latency.Percentile(50)).c_str(),
                FormatMillis(stats.latency.Percentile(95)).c_str(),
                FormatMillis(stats.latency.Percentile(99)).c_str(),
                FormatSeconds(stats.dm_s).c_str(),
                FormatSeconds(stats.analytics_s).c_str(),
                FormatSeconds(stats.glue_s).c_str());
  }
}

}  // namespace genbase::workload
