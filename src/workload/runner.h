#ifndef GENBASE_WORKLOAD_RUNNER_H_
#define GENBASE_WORKLOAD_RUNNER_H_

#include <map>

#include "common/status.h"
#include "core/datasets.h"
#include "core/engine.h"
#include "workload/report.h"
#include "workload/workload_spec.h"

namespace genbase::workload {

/// \brief Drives a concurrent mixed-query workload against one engine.
///
/// The runner loads the dataset into the engine once, expands the spec into
/// its deterministic operation schedule (see BuildSchedule), then fans
/// `spec.clients` client threads out over a dedicated common/thread_pool.
/// Clients claim operations from the shared schedule through an atomic
/// cursor and execute them through core::RunCellWithContext — the same
/// timed, timeout/INF-enforcing path the single-cell figures use — each with
/// its own reusable ExecContext. Engines are driven as one shared session:
/// they only read loaded state during RunQuery and their trackers are
/// atomic, so a single loaded engine serves all clients, exactly like a
/// database server under concurrent sessions.
///
/// Determinism: operation count and query mix of a run are a pure function
/// of the spec (schedule is pre-built; every scheduled op executes exactly
/// once). Latencies and throughput are measured and vary run to run.
///
/// When `spec.verify` is set, the ground truth for every query in the mix is
/// computed once through core/reference and every completed operation's
/// result is compared against it (core/verify tolerances); mismatches are
/// tallied as verify_failures.
class WorkloadRunner {
 public:
  explicit WorkloadRunner(WorkloadSpec spec);

  const WorkloadSpec& spec() const { return spec_; }

  /// Installs precomputed ground truth, keyed by query. Truth depends only
  /// on (query, data, params), so callers sweeping one dataset across many
  /// engines/client counts (bench/fig6) compute it once and share it;
  /// without this, Run recomputes the reference for every invocation.
  void set_ground_truth(std::map<core::QueryId, core::QueryResult> truths) {
    truths_ = std::move(truths);
  }

  /// Loads `data` into `engine` (unless `already_loaded`), runs the warm-up
  /// and measured phases, and returns the aggregated report. Returns a
  /// non-OK status only for spec/load/reference failures; per-operation
  /// failures are reported in the WorkloadReport counters.
  genbase::Result<WorkloadReport> Run(core::Engine* engine,
                                      const core::GenBaseData& data,
                                      bool already_loaded = false);

 private:
  WorkloadSpec spec_;
  std::map<core::QueryId, core::QueryResult> truths_;
};

}  // namespace genbase::workload

#endif  // GENBASE_WORKLOAD_RUNNER_H_
