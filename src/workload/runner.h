#ifndef GENBASE_WORKLOAD_RUNNER_H_
#define GENBASE_WORKLOAD_RUNNER_H_

#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/datasets.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "serving/serving_stack.h"
#include "workload/report.h"
#include "workload/workload_spec.h"

namespace genbase::workload {

/// \brief Drives a concurrent mixed-query workload against one engine or a
/// serving stack.
///
/// The runner expands the spec into its deterministic operation schedule
/// (see BuildSchedule), then fans `spec.clients` client threads out over a
/// dedicated common/thread_pool. Clients claim operations from the shared
/// schedule through an atomic cursor and execute them either directly
/// through core::RunCellWithContext — the same timed, timeout/INF-enforcing
/// path the single-cell figures use — or through serving::ServingStack
/// (result cache, admission control, shard routing), each with its own
/// reusable ExecContext. Engines are driven as one shared session: they only
/// read loaded state during RunQuery and their trackers are atomic, so a
/// single loaded engine serves all clients, exactly like a database server
/// under concurrent sessions.
///
/// Determinism: operation count, query mix and parameter variants of a run
/// are a pure function of the spec (schedule is pre-built; every scheduled
/// op executes — or is shed — exactly once). Latencies, throughput and shed
/// decisions are measured and vary run to run.
///
/// Latency accounting is coordinated-omission aware: under the open-loop
/// models, a served op's latency runs from its *scheduled arrival* (the
/// instant a real client would have issued it), not from whenever a
/// dispatch thread got to it, and the queueing share (dispatch lag plus
/// admission wait) is recorded in its own histogram.
///
/// When `spec.verify` is set, the ground truth for every (query, variant)
/// pair in the measured schedule is computed once through core/reference and
/// every served operation's result — cached or executed — is compared
/// against it (core/verify tolerances); mismatches are tallied as
/// verify_failures.
class WorkloadRunner {
 public:
  /// Ground truth is keyed by (query, param-variant index).
  using TruthKey = std::pair<core::QueryId, int>;

  /// One executed (or shed) operation, as consumed by the record step.
  struct OpOutcome {
    core::CellResult cell;
    bool shed = false;
    bool shed_timeout = false;  ///< vs queue-full, when shed.
    double queue_delay_s = 0.0; ///< Dispatch lag + admission wait.
    /// Per-stage seconds. queue/cache/flight/dispatch/execute are filled by
    /// the executor; the runner adds the dispatch-lag share of queue and the
    /// verify stage, preserving queue + flight == queue_delay_s and
    /// Sum() == queue_delay_s + cell.total_s + verify.
    obs::StageSeconds stages;
    /// MemoryTracker reservation activity (monotone reserved-total delta on
    /// the op's ExecContext tracker) across the op; -1 when profiling is off
    /// or no tracker was installed. Shared-tracker runs make this an
    /// "allocation activity during the request window" measure, not an
    /// exclusive attribution.
    int64_t alloc_delta_bytes = -1;
    bool stale_tripwire = false;  ///< Served stale past the tripwire age.
    int retries = 0;              ///< Extra execute attempts after failures.
    bool hedged = false;          ///< A duplicate (hedged) attempt ran.
  };

  explicit WorkloadRunner(WorkloadSpec spec);

  const WorkloadSpec& spec() const { return spec_; }

  /// Installs precomputed ground truth for the base params (variant 0).
  /// Truth depends only on (query, data, params), so callers sweeping one
  /// dataset across many engines/client counts (bench/fig6) compute it once
  /// and share it; without this, Run recomputes the reference for every
  /// invocation.
  void set_ground_truth(std::map<core::QueryId, core::QueryResult> truths) {
    for (auto& [query, truth] : truths) {
      truths_[{query, 0}] = std::move(truth);
    }
  }

  /// As above for variant-keyed truths (callers sweeping param_variants).
  void set_ground_truth_variants(
      std::map<TruthKey, core::QueryResult> truths) {
    for (auto& [key, truth] : truths) truths_[key] = std::move(truth);
  }

  /// Invoked immediately before the measured phase starts issuing ops
  /// (after warm-up and after the serving-counter baseline snapshot).
  /// Reload-while-serving benches use it to launch dataset churn that is
  /// guaranteed to land inside the measured window — and inside the
  /// measured counter delta — rather than racing the warm-up.
  void set_on_measure_start(std::function<void()> hook) {
    on_measure_start_ = std::move(hook);
  }

  /// Loads `data` into `engine` (unless `already_loaded`), runs the warm-up
  /// and measured phases directly against the engine, and returns the
  /// aggregated report. Returns a non-OK status only for spec/load/reference
  /// failures; per-operation failures are reported in the WorkloadReport
  /// counters.
  genbase::Result<WorkloadReport> Run(core::Engine* engine,
                                      const core::GenBaseData& data,
                                      bool already_loaded = false);

  /// Runs the workload through a serving stack (whose shards were loaded at
  /// ServingStack::Create). `data` is used only to compute missing reference
  /// truths. The report additionally carries the measured-phase
  /// cache/admission/shard counters and shed tallies.
  genbase::Result<WorkloadReport> Run(serving::ServingStack* stack,
                                      const core::GenBaseData& data);

 private:
  using Executor = std::function<OpOutcome(
      const ScheduledOp& op, const core::DriverOptions& options,
      std::optional<std::chrono::steady_clock::time_point> scheduled_arrival,
      ExecContext* ctx)>;

  genbase::Status EnsureTruths(const core::GenBaseData& data,
                               const std::vector<ScheduledOp>& schedule);

  /// The shared client/phase machinery behind both Run overloads.
  genbase::Result<WorkloadReport> RunScheduled(
      const std::string& engine_name, int shards,
      serving::ServingStack* stack, const std::vector<ScheduledOp>& schedule,
      const Executor& exec);

  WorkloadSpec spec_;
  std::map<TruthKey, core::QueryResult> truths_;
  std::function<void()> on_measure_start_;
};

}  // namespace genbase::workload

#endif  // GENBASE_WORKLOAD_RUNNER_H_
