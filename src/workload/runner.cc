#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/driver.h"
#include "core/queries.h"
#include "core/reference.h"
#include "core/verify.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "plan/plan_stats.h"

namespace genbase::workload {

namespace {

using Clock = std::chrono::steady_clock;

/// Tail-keep caps: flagged requests (shed / stale tripwire / deadline miss /
/// verify failure) per client and after the cross-client merge, plus the
/// slowest-N successful requests. Small fixed bounds so a pathological run
/// (everything shed) cannot balloon the slow-query log.
constexpr size_t kMaxFlaggedPerClient = 8;
constexpr size_t kSlowestPerClient = 4;
constexpr size_t kMaxFlaggedTotal = 32;
constexpr size_t kSlowestTotal = 8;

/// Per-client accumulation; merged into the report after each phase so the
/// hot path takes no locks.
struct ClientState {
  ExecContext ctx;
  OpStats total;
  std::map<core::QueryId, OpStats> per_query;
  /// Tail-keep candidates, merged and re-capped by FlushTailKept.
  std::vector<obs::SlowQueryRecord> flagged;
  std::vector<obs::SlowQueryRecord> slowest;  ///< Desc by latency, capped.
};

void RecordOutcome(const WorkloadRunner::OpOutcome& outcome, bool mismatched,
                   core::QueryId query, ClientState* state) {
  // Classify once (verification already ran in the client loop, where it
  // could be timed as the verify stage); the loop below only bumps counters
  // into the run-total and per-query aggregates.
  const core::CellResult& cell = outcome.cell;
  const bool failed = !outcome.shed && !cell.infinite &&
                      (!cell.supported || !cell.status.ok());
  const bool succeeded = !outcome.shed && !cell.infinite && !failed;
  OpStats& q = state->per_query[query];
  for (OpStats* stats : {&state->total, &q}) {
    stats->ops += 1;
    if (outcome.shed) {
      // A shed op never executed: it contributes to the offered load and to
      // its shed counter, nothing else.
      stats->shed_timeout += outcome.shed_timeout ? 1 : 0;
      stats->shed_queue_full += outcome.shed_timeout ? 0 : 1;
      continue;
    }
    stats->dm_s += cell.dm_s;
    stats->analytics_s += cell.analytics_s;
    stats->glue_s += cell.glue_s;
    stats->modeled_s += cell.modeled_s;
    stats->infs += cell.infinite ? 1 : 0;
    stats->errors += failed ? 1 : 0;
    stats->verify_failures += mismatched ? 1 : 0;
    if (succeeded) {
      // Only successful operations enter the latency distributions: an
      // unsupported/errored op completes in ~0s and an INF op's time is
      // censored by the budget — recording either would drag p50 down or
      // up artificially. Failures are visible in their own counters.
      stats->latency.Record(outcome.queue_delay_s + cell.total_s);
      stats->queue_delay.Record(outcome.queue_delay_s);
      for (int s = 0; s < obs::kNumRequestStages; ++s) {
        stats->stage[s].Record(outcome.stages.s[s]);
        stats->stage_wall_s[s] += outcome.stages.s[s];
        stats->stage_cpu_s[s] += outcome.stages.cpu[s];
      }
      stats->e2e_latency.Record(outcome.queue_delay_s + cell.total_s +
                                outcome.stages[obs::RequestStage::kVerify]);
    }
  }
}

/// Tail-based keep, per-client half: remember every flagged request (shed /
/// stale tripwire / deadline miss / verify failure / retried / hedged) up to
/// a small cap, and
/// the client's slowest successful requests, so interesting tails survive
/// even when head sampling skipped them.
void KeepTailCandidates(const WorkloadRunner::OpOutcome& outcome,
                        bool mismatched, const ScheduledOp& op,
                        uint64_t trace_id, double start_s,
                        const std::string& workload, ClientState* state) {
  const core::CellResult& cell = outcome.cell;
  const bool deadline_missed = !outcome.shed && cell.infinite;
  const bool failed = !outcome.shed && !cell.infinite &&
                      (!cell.supported || !cell.status.ok());
  const bool succeeded = !outcome.shed && !cell.infinite && !failed;
  const bool flagged = outcome.shed || outcome.stale_tripwire ||
                       deadline_missed || mismatched || outcome.retries > 0 ||
                       outcome.hedged;
  if (!flagged && !succeeded) return;
  const double e2e_s = outcome.queue_delay_s + cell.total_s +
                       outcome.stages[obs::RequestStage::kVerify];
  const auto make_record = [&] {
    obs::SlowQueryRecord rec;
    rec.trace_id = trace_id;
    rec.workload = workload;
    rec.query = core::QueryName(op.query);
    rec.variant = op.variant;
    rec.class_id = static_cast<int>(op.query);
    rec.start_s = start_s;
    rec.latency_s = e2e_s;
    rec.stages = outcome.stages;
    rec.alloc_delta_bytes = outcome.alloc_delta_bytes;
    rec.shed = outcome.shed;
    rec.stale_tripwire = outcome.stale_tripwire;
    rec.deadline_missed = deadline_missed;
    rec.verify_failed = mismatched;
    rec.retries = outcome.retries;
    rec.hedged = outcome.hedged;
    return rec;
  };
  if (flagged) {
    if (state->flagged.size() < kMaxFlaggedPerClient) {
      state->flagged.push_back(make_record());
    }
    return;
  }
  std::vector<obs::SlowQueryRecord>& slowest = state->slowest;
  if (slowest.size() < kSlowestPerClient ||
      e2e_s > slowest.back().latency_s) {
    slowest.push_back(make_record());
    std::sort(slowest.begin(), slowest.end(),
              [](const obs::SlowQueryRecord& a,
                 const obs::SlowQueryRecord& b) {
                return a.latency_s > b.latency_s;
              });
    if (slowest.size() > kSlowestPerClient) slowest.pop_back();
  }
}

/// Tail-based keep, merge half: cap the union of per-client candidates,
/// write the slow-query log, and synthesize spans (from the exact
/// StageSeconds every request carries) for kept requests head sampling
/// skipped — so every kept request is visible in the exported trace.
void FlushTailKept(std::vector<ClientState>* clients) {
  std::vector<obs::SlowQueryRecord> kept;
  std::vector<obs::SlowQueryRecord> slow;
  for (ClientState& state : *clients) {
    for (obs::SlowQueryRecord& rec : state.flagged) {
      if (kept.size() < kMaxFlaggedTotal) kept.push_back(std::move(rec));
    }
    for (obs::SlowQueryRecord& rec : state.slowest) {
      slow.push_back(std::move(rec));
    }
    state.flagged.clear();
    state.slowest.clear();
  }
  std::sort(slow.begin(), slow.end(),
            [](const obs::SlowQueryRecord& a, const obs::SlowQueryRecord& b) {
              return a.latency_s > b.latency_s;
            });
  if (slow.size() > kSlowestTotal) slow.resize(kSlowestTotal);
  for (obs::SlowQueryRecord& rec : slow) {
    rec.slowest = true;
    kept.push_back(std::move(rec));
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  const double rate = tracer.sample_rate();
  for (obs::SlowQueryRecord& rec : kept) {
    if (!obs::TraceSampled(rec.trace_id, rate)) {
      // Rebuild the request's spans from its stage breakdown (stages are
      // laid out sequentially — their real overlap is unknown, their
      // durations are exact). Span ids restart at 1: the trace was not
      // head-sampled, so no live spans share its id space.
      obs::Span root;
      root.trace_id = rec.trace_id;
      root.span_id = 1;
      root.name = "request";
      root.start_s = rec.start_s;
      root.dur_s = rec.latency_s;
      root.tid = obs::Tracer::ThreadOrdinal();
      root.synthetic = true;
      root.SetDetail(rec.query);
      tracer.Record(root);
      double t = rec.start_s;
      uint64_t next_span_id = 2;
      for (int s = 0; s < obs::kNumRequestStages; ++s) {
        if (rec.stages.s[s] <= 0) continue;
        obs::Span span;
        span.trace_id = rec.trace_id;
        span.span_id = next_span_id++;
        span.parent_id = 1;
        span.name = obs::RequestStageName(static_cast<obs::RequestStage>(s));
        span.start_s = t;
        span.dur_s = rec.stages.s[s];
        span.tid = root.tid;
        span.synthetic = true;
        tracer.Record(span);
        t += rec.stages.s[s];
      }
    }
    tracer.LogSlowQuery(std::move(rec));
  }
}

}  // namespace

WorkloadRunner::WorkloadRunner(WorkloadSpec spec) : spec_(std::move(spec)) {}

genbase::Status WorkloadRunner::EnsureTruths(
    const core::GenBaseData& data, const std::vector<ScheduledOp>& schedule) {
  if (!spec_.verify) return genbase::Status::OK();
  // Ground truth once per distinct (query, variant) in the measured phase
  // (warm-up results are discarded, so they need no truth), skipping pairs
  // the caller already provided via set_ground_truth*.
  for (size_t i = static_cast<size_t>(spec_.warmup_ops); i < schedule.size();
       ++i) {
    const TruthKey key{schedule[i].query, schedule[i].variant};
    if (truths_.count(key) != 0) continue;
    auto truth = core::RunReferenceQuery(
        key.first, data, VariantParams(spec_.params, key.second));
    if (!truth.ok()) return truth.status();
    truths_.emplace(key, std::move(truth).ValueOrDie());
  }
  return genbase::Status::OK();
}

genbase::Result<WorkloadReport> WorkloadRunner::Run(
    core::Engine* engine, const core::GenBaseData& data, bool already_loaded) {
  GENBASE_RETURN_NOT_OK(spec_.Validate());
  if (!already_loaded) {
    GENBASE_RETURN_NOT_OK(engine->LoadDataset(data));
  }
  const std::vector<ScheduledOp> schedule = BuildSchedule(spec_);
  GENBASE_RETURN_NOT_OK(EnsureTruths(data, schedule));

  return RunScheduled(
      engine->name(), /*shards=*/1, /*stack=*/nullptr, schedule,
      [engine, this](const ScheduledOp& op,
                     const core::DriverOptions& options,
                     std::optional<Clock::time_point>, ExecContext* ctx) {
        OpOutcome outcome;
        obs::ScopedSpan span("execute");
        const double exec_start_s =
            span.active() ? obs::Tracer::Global().NowSeconds() : 0.0;
        const double exec_cpu_begin = obs::Profiler::CpuBegin();
        {
          obs::ScopedExecutePerf exec_perf;
          outcome.cell = core::RunCellWithContext(engine, op.query,
                                                  spec_.size, options, ctx);
        }
        // Direct-to-engine: the whole cell is the execute stage.
        outcome.stages[obs::RequestStage::kExecute] = outcome.cell.total_s;
        outcome.stages.Cpu(obs::RequestStage::kExecute) =
            obs::Profiler::CpuDelta(exec_cpu_begin);
        if (span.active()) {
          // PhaseClock bridge: the cell's phase split as sequential child
          // spans (dm excludes glue, which PhaseClock nests inside it).
          double t = exec_start_s;
          const auto emit = [&t](const char* name, double dur_s) {
            if (dur_s > 0) {
              obs::EmitChildSpan(name, t, dur_s);
              t += dur_s;
            }
          };
          emit("data_management",
               std::max(0.0, outcome.cell.dm_s - outcome.cell.glue_s));
          emit("analytics", outcome.cell.analytics_s);
          emit("glue", outcome.cell.glue_s);
        }
        return outcome;
      });
}

genbase::Result<WorkloadReport> WorkloadRunner::Run(
    serving::ServingStack* stack, const core::GenBaseData& data) {
  GENBASE_RETURN_NOT_OK(spec_.Validate());
  const std::vector<ScheduledOp> schedule = BuildSchedule(spec_);
  GENBASE_RETURN_NOT_OK(EnsureTruths(data, schedule));

  return RunScheduled(
      stack->engine_name(), stack->shards(), stack, schedule,
      [stack, this](const ScheduledOp& op, const core::DriverOptions& options,
                    std::optional<Clock::time_point> arrival,
                    ExecContext* ctx) {
        const serving::ServeResult served =
            stack->Serve(op.query, spec_.size, options, ctx, arrival);
        OpOutcome outcome;
        outcome.cell = served.cell;
        outcome.shed = served.shed;
        outcome.shed_timeout =
            served.admission == serving::AdmissionOutcome::kShedTimeout;
        outcome.queue_delay_s = served.admission_wait_s;
        outcome.stages = served.stages;
        outcome.stale_tripwire = served.stale_tripwire;
        outcome.retries = served.retries;
        outcome.hedged = served.hedged;
        return outcome;
      });
}

genbase::Result<WorkloadReport> WorkloadRunner::RunScheduled(
    const std::string& engine_name, int shards, serving::ServingStack* stack,
    const std::vector<ScheduledOp>& schedule, const Executor& exec) {
  const size_t warmup_end = static_cast<size_t>(spec_.warmup_ops);

  // Per-variant driver options, precomputed once.
  std::vector<core::DriverOptions> variant_options(
      static_cast<size_t>(spec_.param_variants));
  for (int v = 0; v < spec_.param_variants; ++v) {
    variant_options[static_cast<size_t>(v)].timeout_seconds =
        spec_.timeout_seconds;
    variant_options[static_cast<size_t>(v)].params =
        VariantParams(spec_.params, v);
  }

  const bool open_loop = spec_.model != ClientModel::kClosedLoop;
  std::vector<ClientState> clients(spec_.clients);
  ThreadPool pool(spec_.clients);

  // One client loop over a [begin, end) slice of the schedule. Clients claim
  // ops through `cursor`; open-loop clients additionally wait for each op's
  // arrival offset (relative to `phase_start`) before issuing.
  auto run_phase = [&](size_t begin, size_t end, bool record) {
    std::atomic<size_t> cursor{begin};
    const auto phase_start = Clock::now();
    for (int c = 0; c < spec_.clients; ++c) {
      ClientState* state = &clients[c];
      pool.Submit([&, state] {
        bool first_op = true;
        for (;;) {
          const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= end) return;
          // Closed-loop think time separates a completion from the *next*
          // issue, so it is paid after claiming more work — never as a
          // trailing sleep that would pad the measured wall time.
          if (!first_op && spec_.model == ClientModel::kClosedLoop &&
              spec_.think_time_s > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(spec_.think_time_s));
          }
          first_op = false;
          const ScheduledOp& op = schedule[i];
          std::optional<Clock::time_point> arrival;
          double dispatch_lag_s = 0.0;
          if (open_loop) {
            arrival = phase_start +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(op.arrival_offset_s));
            if (*arrival > Clock::now()) {
              std::this_thread::sleep_until(*arrival);
            }
            // Coordinated-omission correction: the op was *scheduled* at
            // `arrival`; any lag before this thread could issue it is
            // queueing delay the op's client really experienced.
            dispatch_lag_s = std::max(
                0.0, std::chrono::duration<double>(Clock::now() - *arrival)
                         .count());
          }
          // Tracing context for this op: deterministic id (a pure function
          // of seed/workload/schedule index, so reruns sample the same
          // requests) installed thread-locally — spans opened anywhere
          // below (serving stack, engine) need no plumbing.
          const uint64_t trace_id =
              obs::RequestTraceId(spec_.seed, spec_.name, i);
          const bool sampled =
              record && obs::TraceSampled(
                            trace_id, obs::Tracer::Global().sample_rate());
          const double req_start_s = obs::Tracer::Global().NowSeconds();
          OpOutcome outcome;
          bool mismatched = false;
          {
            obs::ScopedTrace trace(trace_id, sampled);
            obs::ScopedSpan request_span("request");
            if (request_span.active()) {
              request_span.SetDetail(std::string(core::QueryName(op.query)) +
                                     "/v" + std::to_string(op.variant));
            }
            // Allocation attribution: reserved-total is monotone, so the
            // delta across the op counts reservation activity during its
            // window even when everything was released again. Needs the
            // tracker installed before the op — warm-up's first op through
            // each engine guarantees that for measured ops.
            MemoryTracker* alloc_tracker =
                obs::Profiler::Enabled() ? state->ctx.memory() : nullptr;
            const int64_t alloc_before =
                alloc_tracker != nullptr ? alloc_tracker->reserved_total()
                                         : 0;
            outcome =
                exec(op, variant_options[static_cast<size_t>(op.variant)],
                     arrival, &state->ctx);
            if (alloc_tracker != nullptr &&
                state->ctx.memory() == alloc_tracker) {
              outcome.alloc_delta_bytes =
                  alloc_tracker->reserved_total() - alloc_before;
            }
            outcome.queue_delay_s += dispatch_lag_s;
            // Dispatch lag is queueing the op's client really saw; fold it
            // into the queue stage so queue + flight == queue_delay holds.
            outcome.stages[obs::RequestStage::kQueue] += dispatch_lag_s;
            if (record) {
              // Verification runs here — inside the trace, on the client
              // thread — so it is timed as the request's verify stage and
              // shows up as a span instead of vanishing into bookkeeping.
              const core::CellResult& cell = outcome.cell;
              const bool verifiable = !outcome.shed && !cell.infinite &&
                                      cell.supported && cell.status.ok();
              const auto it = verifiable
                                  ? truths_.find({op.query, op.variant})
                                  : truths_.end();
              if (it != truths_.end()) {
                obs::ScopedSpan verify_span("verify");
                const double verify_cpu_begin = obs::Profiler::CpuBegin();
                const auto verify_start = Clock::now();
                mismatched =
                    !core::CompareQueryResults(it->second, cell.result).ok();
                outcome.stages[obs::RequestStage::kVerify] =
                    std::chrono::duration<double>(Clock::now() -
                                                  verify_start)
                        .count();
                outcome.stages.Cpu(obs::RequestStage::kVerify) =
                    obs::Profiler::CpuDelta(verify_cpu_begin);
                if (mismatched) verify_span.SetDetail("mismatch");
              }
            }
          }
          if (obs::Profiler::Enabled()) {
            // Thread-CPU and wall clocks have different granularities; a
            // sub-granule stage can read cpu > wall. Clamp per stage so the
            // cpu/wall ratio is a fraction by construction.
            for (int s = 0; s < obs::kNumRequestStages; ++s) {
              outcome.stages.cpu[s] =
                  std::min(outcome.stages.cpu[s], outcome.stages.s[s]);
            }
            // Periodic RSS samples (one small /proc read): enough points to
            // chart memory growth without touching every op.
            if ((i & 31) == 0) obs::SampleProcessRss();
          }
          if (record) {
            RecordOutcome(outcome, mismatched, op.query, state);
            KeepTailCandidates(outcome, mismatched, op, trace_id,
                               req_start_s, spec_.name, state);
          }
        }
      });
    }
    pool.Wait();
  };

  if (warmup_end > 0) run_phase(0, warmup_end, /*record=*/false);

  // Serving counters over the measured phase only: warm-up legitimately
  // warms the cache, but its hits/misses are not part of the measurement.
  serving::ServingCounters counters_at_measure_start;
  if (stack != nullptr) counters_at_measure_start = stack->counters();

  // Plan counters likewise: warm-up compiles the plans; the measured phase
  // should mostly show cache hits and executes.
  const plan::PlanStatsSnapshot plan_at_measure_start =
      plan::PlanStatsSnapshot::Capture();

  if (on_measure_start_) on_measure_start_();

  // Execute-stage hardware counters over the measured phase only (the
  // accumulator is process-global and monotone, so warm-up work subtracts
  // out). RSS snapshot on both edges for the gauges.
  const obs::ExecutePerfTotals perf_at_measure_start =
      obs::ExecutePerfSnapshot();
  if (obs::Profiler::Enabled()) obs::SampleProcessRss();

  WallTimer wall;
  run_phase(warmup_end, schedule.size(), /*record=*/true);
  const double wall_seconds = wall.Seconds();
  if (obs::Profiler::Enabled()) obs::SampleProcessRss();

  // Tail-keep + drain: log kept requests (synthesizing spans for the ones
  // head sampling skipped), then pull every thread ring into the collector
  // so spans survive the pool threads this run used.
  FlushTailKept(&clients);
  obs::Tracer::Global().Collect();

  WorkloadReport report;
  report.engine = engine_name;
  report.workload_name = spec_.name;
  report.model = spec_.model;
  report.clients = spec_.clients;
  report.shards = shards;
  report.param_variants = spec_.param_variants;
  report.seed = spec_.seed;
  report.kernel_backend = simd::BackendName(simd::ActiveBackend());
  report.wall_seconds = wall_seconds;
  report.profiled = obs::Profiler::Enabled();
  if (report.profiled) {
    report.execute_perf =
        obs::ExecutePerfSnapshot() - perf_at_measure_start;
  }
  if (open_loop) report.offered_qps = spec_.arrival_rate_qps;
  if (stack != nullptr) {
    report.has_serving = true;
    report.serving =
        serving::CountersDelta(stack->counters(), counters_at_measure_start);
  }
  report.plan = plan::PlanStatsSnapshot::Capture() - plan_at_measure_start;
  // Plan counters are process-global; only claim them when this run's
  // engine actually executed planned queries during the measured phase.
  report.has_plan = report.plan.executes > 0 || report.plan.compiles > 0;
  for (const ClientState& state : clients) {
    report.total.MergeFrom(state.total);
    for (const auto& [query, stats] : state.per_query) {
      report.per_query[query].MergeFrom(stats);
    }
  }
  return report;
}

}  // namespace genbase::workload
