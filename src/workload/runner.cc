#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/driver.h"
#include "core/reference.h"
#include "core/verify.h"

namespace genbase::workload {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-client accumulation; merged into the report after each phase so the
/// hot path takes no locks.
struct ClientState {
  ExecContext ctx;
  OpStats total;
  std::map<core::QueryId, OpStats> per_query;
};

void RecordOutcome(const WorkloadRunner::OpOutcome& outcome,
                   const core::QueryResult* truth, core::QueryId query,
                   ClientState* state) {
  // Classify (and verify against ground truth) once; the loop below only
  // bumps counters into the run-total and per-query aggregates.
  const core::CellResult& cell = outcome.cell;
  const bool failed = !outcome.shed && !cell.infinite &&
                      (!cell.supported || !cell.status.ok());
  const bool succeeded = !outcome.shed && !cell.infinite && !failed;
  const bool mismatched =
      succeeded && truth != nullptr &&
      !core::CompareQueryResults(*truth, cell.result).ok();
  OpStats& q = state->per_query[query];
  for (OpStats* stats : {&state->total, &q}) {
    stats->ops += 1;
    if (outcome.shed) {
      // A shed op never executed: it contributes to the offered load and to
      // its shed counter, nothing else.
      stats->shed_timeout += outcome.shed_timeout ? 1 : 0;
      stats->shed_queue_full += outcome.shed_timeout ? 0 : 1;
      continue;
    }
    stats->dm_s += cell.dm_s;
    stats->analytics_s += cell.analytics_s;
    stats->glue_s += cell.glue_s;
    stats->modeled_s += cell.modeled_s;
    stats->infs += cell.infinite ? 1 : 0;
    stats->errors += failed ? 1 : 0;
    stats->verify_failures += mismatched ? 1 : 0;
    if (succeeded) {
      // Only successful operations enter the latency distributions: an
      // unsupported/errored op completes in ~0s and an INF op's time is
      // censored by the budget — recording either would drag p50 down or
      // up artificially. Failures are visible in their own counters.
      stats->latency.Record(outcome.queue_delay_s + cell.total_s);
      stats->queue_delay.Record(outcome.queue_delay_s);
    }
  }
}

}  // namespace

WorkloadRunner::WorkloadRunner(WorkloadSpec spec) : spec_(std::move(spec)) {}

genbase::Status WorkloadRunner::EnsureTruths(
    const core::GenBaseData& data, const std::vector<ScheduledOp>& schedule) {
  if (!spec_.verify) return genbase::Status::OK();
  // Ground truth once per distinct (query, variant) in the measured phase
  // (warm-up results are discarded, so they need no truth), skipping pairs
  // the caller already provided via set_ground_truth*.
  for (size_t i = static_cast<size_t>(spec_.warmup_ops); i < schedule.size();
       ++i) {
    const TruthKey key{schedule[i].query, schedule[i].variant};
    if (truths_.count(key) != 0) continue;
    auto truth = core::RunReferenceQuery(
        key.first, data, VariantParams(spec_.params, key.second));
    if (!truth.ok()) return truth.status();
    truths_.emplace(key, std::move(truth).ValueOrDie());
  }
  return genbase::Status::OK();
}

genbase::Result<WorkloadReport> WorkloadRunner::Run(
    core::Engine* engine, const core::GenBaseData& data, bool already_loaded) {
  GENBASE_RETURN_NOT_OK(spec_.Validate());
  if (!already_loaded) {
    GENBASE_RETURN_NOT_OK(engine->LoadDataset(data));
  }
  const std::vector<ScheduledOp> schedule = BuildSchedule(spec_);
  GENBASE_RETURN_NOT_OK(EnsureTruths(data, schedule));

  return RunScheduled(engine->name(), /*shards=*/1, /*stack=*/nullptr,
                      schedule,
                      [engine, this](const ScheduledOp& op,
                                     const core::DriverOptions& options,
                                     std::optional<Clock::time_point>,
                                     ExecContext* ctx) {
                        OpOutcome outcome;
                        outcome.cell = core::RunCellWithContext(
                            engine, op.query, spec_.size, options, ctx);
                        return outcome;
                      });
}

genbase::Result<WorkloadReport> WorkloadRunner::Run(
    serving::ServingStack* stack, const core::GenBaseData& data) {
  GENBASE_RETURN_NOT_OK(spec_.Validate());
  const std::vector<ScheduledOp> schedule = BuildSchedule(spec_);
  GENBASE_RETURN_NOT_OK(EnsureTruths(data, schedule));

  return RunScheduled(
      stack->engine_name(), stack->shards(), stack, schedule,
      [stack, this](const ScheduledOp& op, const core::DriverOptions& options,
                    std::optional<Clock::time_point> arrival,
                    ExecContext* ctx) {
        const serving::ServeResult served =
            stack->Serve(op.query, spec_.size, options, ctx, arrival);
        OpOutcome outcome;
        outcome.cell = served.cell;
        outcome.shed = served.shed;
        outcome.shed_timeout =
            served.admission == serving::AdmissionOutcome::kShedTimeout;
        outcome.queue_delay_s = served.admission_wait_s;
        return outcome;
      });
}

genbase::Result<WorkloadReport> WorkloadRunner::RunScheduled(
    const std::string& engine_name, int shards, serving::ServingStack* stack,
    const std::vector<ScheduledOp>& schedule, const Executor& exec) {
  const size_t warmup_end = static_cast<size_t>(spec_.warmup_ops);

  // Per-variant driver options, precomputed once.
  std::vector<core::DriverOptions> variant_options(
      static_cast<size_t>(spec_.param_variants));
  for (int v = 0; v < spec_.param_variants; ++v) {
    variant_options[static_cast<size_t>(v)].timeout_seconds =
        spec_.timeout_seconds;
    variant_options[static_cast<size_t>(v)].params =
        VariantParams(spec_.params, v);
  }

  const bool open_loop = spec_.model != ClientModel::kClosedLoop;
  std::vector<ClientState> clients(spec_.clients);
  ThreadPool pool(spec_.clients);

  // One client loop over a [begin, end) slice of the schedule. Clients claim
  // ops through `cursor`; open-loop clients additionally wait for each op's
  // arrival offset (relative to `phase_start`) before issuing.
  auto run_phase = [&](size_t begin, size_t end, bool record) {
    std::atomic<size_t> cursor{begin};
    const auto phase_start = Clock::now();
    for (int c = 0; c < spec_.clients; ++c) {
      ClientState* state = &clients[c];
      pool.Submit([&, state] {
        bool first_op = true;
        for (;;) {
          const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= end) return;
          // Closed-loop think time separates a completion from the *next*
          // issue, so it is paid after claiming more work — never as a
          // trailing sleep that would pad the measured wall time.
          if (!first_op && spec_.model == ClientModel::kClosedLoop &&
              spec_.think_time_s > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(spec_.think_time_s));
          }
          first_op = false;
          const ScheduledOp& op = schedule[i];
          std::optional<Clock::time_point> arrival;
          double dispatch_lag_s = 0.0;
          if (open_loop) {
            arrival = phase_start +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(op.arrival_offset_s));
            if (*arrival > Clock::now()) {
              std::this_thread::sleep_until(*arrival);
            }
            // Coordinated-omission correction: the op was *scheduled* at
            // `arrival`; any lag before this thread could issue it is
            // queueing delay the op's client really experienced.
            dispatch_lag_s = std::max(
                0.0, std::chrono::duration<double>(Clock::now() - *arrival)
                         .count());
          }
          OpOutcome outcome =
              exec(op, variant_options[static_cast<size_t>(op.variant)],
                   arrival, &state->ctx);
          outcome.queue_delay_s += dispatch_lag_s;
          if (record) {
            auto it = truths_.find({op.query, op.variant});
            RecordOutcome(outcome,
                          it == truths_.end() ? nullptr : &it->second,
                          op.query, state);
          }
        }
      });
    }
    pool.Wait();
  };

  if (warmup_end > 0) run_phase(0, warmup_end, /*record=*/false);

  // Serving counters over the measured phase only: warm-up legitimately
  // warms the cache, but its hits/misses are not part of the measurement.
  serving::ServingCounters counters_at_measure_start;
  if (stack != nullptr) counters_at_measure_start = stack->counters();

  if (on_measure_start_) on_measure_start_();

  WallTimer wall;
  run_phase(warmup_end, schedule.size(), /*record=*/true);
  const double wall_seconds = wall.Seconds();

  WorkloadReport report;
  report.engine = engine_name;
  report.workload_name = spec_.name;
  report.model = spec_.model;
  report.clients = spec_.clients;
  report.shards = shards;
  report.param_variants = spec_.param_variants;
  report.seed = spec_.seed;
  report.kernel_backend = simd::BackendName(simd::ActiveBackend());
  report.wall_seconds = wall_seconds;
  if (open_loop) report.offered_qps = spec_.arrival_rate_qps;
  if (stack != nullptr) {
    report.has_serving = true;
    report.serving =
        serving::CountersDelta(stack->counters(), counters_at_measure_start);
  }
  for (const ClientState& state : clients) {
    report.total.MergeFrom(state.total);
    for (const auto& [query, stats] : state.per_query) {
      report.per_query[query].MergeFrom(stats);
    }
  }
  return report;
}

}  // namespace genbase::workload
