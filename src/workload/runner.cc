#include "workload/runner.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/driver.h"
#include "core/reference.h"
#include "core/verify.h"

namespace genbase::workload {

namespace {

/// Per-client accumulation; merged into the report after each phase so the
/// hot path takes no locks.
struct ClientState {
  ExecContext ctx;
  OpStats total;
  std::map<core::QueryId, OpStats> per_query;
};

void RecordOutcome(const core::CellResult& cell, const core::QueryResult* truth,
                   ClientState* state) {
  // Classify (and verify against ground truth) once; the loop below only
  // bumps counters into the run-total and per-query aggregates.
  const bool failed = !cell.infinite && (!cell.supported || !cell.status.ok());
  const bool succeeded = !cell.infinite && !failed;
  const bool mismatched =
      succeeded && truth != nullptr &&
      !core::CompareQueryResults(*truth, cell.result).ok();
  OpStats& q = state->per_query[cell.query];
  for (OpStats* stats : {&state->total, &q}) {
    stats->ops += 1;
    stats->dm_s += cell.dm_s;
    stats->analytics_s += cell.analytics_s;
    stats->glue_s += cell.glue_s;
    stats->modeled_s += cell.modeled_s;
    stats->infs += cell.infinite ? 1 : 0;
    stats->errors += failed ? 1 : 0;
    stats->verify_failures += mismatched ? 1 : 0;
    if (succeeded) {
      // Only successful operations enter the latency distribution: an
      // unsupported/errored op completes in ~0s and an INF op's time is
      // censored by the budget — recording either would drag p50 down or
      // up artificially. Failures are visible in their own counters.
      stats->latency.Record(cell.total_s);
    }
  }
}

}  // namespace

WorkloadRunner::WorkloadRunner(WorkloadSpec spec) : spec_(std::move(spec)) {}

genbase::Result<WorkloadReport> WorkloadRunner::Run(
    core::Engine* engine, const core::GenBaseData& data, bool already_loaded) {
  GENBASE_RETURN_NOT_OK(spec_.Validate());
  if (!already_loaded) {
    GENBASE_RETURN_NOT_OK(engine->LoadDataset(data));
  }

  // Ground truth, once per distinct query in the mix (skipping queries the
  // caller already provided via set_ground_truth).
  std::map<core::QueryId, core::QueryResult>& truths = truths_;
  if (spec_.verify) {
    for (const QueryMixEntry& entry : spec_.NormalizedMix()) {
      if (entry.weight <= 0 || truths.count(entry.query) != 0) continue;
      auto truth =
          core::RunReferenceQuery(entry.query, data, spec_.params);
      if (!truth.ok()) return truth.status();
      truths.emplace(entry.query, std::move(truth).ValueOrDie());
    }
  }

  const std::vector<ScheduledOp> schedule = BuildSchedule(spec_);
  const size_t warmup_end = static_cast<size_t>(spec_.warmup_ops);

  core::DriverOptions options;
  options.timeout_seconds = spec_.timeout_seconds;
  options.params = spec_.params;

  std::vector<ClientState> clients(spec_.clients);
  ThreadPool pool(spec_.clients);

  // One client loop over a [begin, end) slice of the schedule. Clients claim
  // ops through `cursor`; open-loop clients additionally wait for each op's
  // arrival offset (relative to `phase_start`) before issuing.
  auto run_phase = [&](size_t begin, size_t end, bool record) {
    std::atomic<size_t> cursor{begin};
    const auto phase_start = std::chrono::steady_clock::now();
    for (int c = 0; c < spec_.clients; ++c) {
      ClientState* state = &clients[c];
      pool.Submit([&, state] {
        bool first_op = true;
        for (;;) {
          const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= end) return;
          // Closed-loop think time separates a completion from the *next*
          // issue, so it is paid after claiming more work — never as a
          // trailing sleep that would pad the measured wall time.
          if (!first_op && spec_.model == ClientModel::kClosedLoop &&
              spec_.think_time_s > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(spec_.think_time_s));
          }
          first_op = false;
          const ScheduledOp& op = schedule[i];
          if (op.arrival_offset_s > 0) {
            std::this_thread::sleep_until(
                phase_start + std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(
                                      op.arrival_offset_s)));
          }
          const core::CellResult cell = core::RunCellWithContext(
              engine, op.query, spec_.size, options, &state->ctx);
          if (record) {
            auto it = truths.find(op.query);
            RecordOutcome(cell, it == truths.end() ? nullptr : &it->second,
                          state);
          }
        }
      });
    }
    pool.Wait();
  };

  if (warmup_end > 0) run_phase(0, warmup_end, /*record=*/false);

  WallTimer wall;
  run_phase(warmup_end, schedule.size(), /*record=*/true);
  const double wall_seconds = wall.Seconds();

  WorkloadReport report;
  report.engine = engine->name();
  report.workload_name = spec_.name;
  report.model = spec_.model;
  report.clients = spec_.clients;
  report.seed = spec_.seed;
  report.wall_seconds = wall_seconds;
  for (const ClientState& state : clients) {
    report.total.MergeFrom(state.total);
    for (const auto& [query, stats] : state.per_query) {
      report.per_query[query].MergeFrom(stats);
    }
  }
  return report;
}

}  // namespace genbase::workload
