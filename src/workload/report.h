#ifndef GENBASE_WORKLOAD_REPORT_H_
#define GENBASE_WORKLOAD_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "core/queries.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "plan/plan_stats.h"
#include "serving/counters.h"
#include "workload/latency_histogram.h"
#include "workload/workload_spec.h"

namespace genbase::workload {

/// --- display helpers ---------------------------------------------------------
/// Shared formatting used by the workload report, bench/bench_util and the
/// figure binaries, so "seconds", "INF" and grid layout render identically
/// everywhere.

/// "%.3f" seconds (the figure-cell convention).
std::string FormatSeconds(double s);

/// Milliseconds with adaptive precision ("0.52ms", "12.3ms", "432ms").
std::string FormatMillis(double seconds);

/// Operations per second with adaptive precision ("8.21", "412").
std::string FormatQps(double qps);

/// \brief Paper-figure-shaped grid: one column per engine/system, one row
/// per x-axis point. (Moved here from core/driver so every consumer of grid
/// output — single-run figures and workload reports — shares one printer.)
void PrintGrid(const std::string& title, const std::string& x_label,
               const std::vector<std::string>& x_values,
               const std::vector<std::string>& engines,
               const std::vector<std::vector<std::string>>& cells);

/// --- per-run report ----------------------------------------------------------

/// \brief Aggregated statistics over one slice of a run (one query, or the
/// whole run).
struct OpStats {
  int64_t ops = 0;              ///< Completed operations (any outcome).
  int64_t errors = 0;           ///< Non-OK, non-INF failures.
  int64_t infs = 0;             ///< Timeout / resource-exhaustion (paper INF).
  int64_t verify_failures = 0;  ///< OK results that failed reference check.
  int64_t shed_queue_full = 0;  ///< Rejected on arrival by admission control.
  int64_t shed_timeout = 0;     ///< Shed in queue past the start deadline.
  /// Per-op latency, successful (served) ops only: errored ops finish in
  /// ~0s, INF ops are censored at the budget, and shed ops never execute, so
  /// any of them would distort the distribution. Open-loop latencies are
  /// coordinated-omission-corrected: measured from *scheduled arrival* to
  /// completion, so an op that sat behind a saturated server pays its wait.
  /// latency.count() == successes.
  LatencyHistogram latency;
  /// Queueing share of the above, on its own clock: dispatch lag behind the
  /// arrival schedule plus admission-queue wait, per served op.
  LatencyHistogram queue_delay;
  /// Per-stage latency, successful ops only, indexed by obs::RequestStage
  /// (queue / cache / flight / dispatch / execute / verify). Stage seconds
  /// per op sum to e2e_latency's sample for that op: queue + flight ==
  /// queue_delay, cache + dispatch + execute == the cell total, and verify
  /// is the runner's reference check.
  LatencyHistogram stage[obs::kNumRequestStages];
  /// Summed per-stage wall and thread-CPU seconds over successful ops, for
  /// the profiler's cpu/wall attribution (ratio of sums — stable where a
  /// per-op ratio distribution would be noise). CPU sums stay zero unless
  /// the run was profiled (obs::Profiler); wall sums always fill.
  double stage_wall_s[obs::kNumRequestStages] = {0, 0, 0, 0, 0, 0};
  double stage_cpu_s[obs::kNumRequestStages] = {0, 0, 0, 0, 0, 0};
  /// End-to-end per-op latency including verification: latency + verify.
  LatencyHistogram e2e_latency;
  double dm_s = 0.0;            ///< Summed phase seconds over ops.
  double analytics_s = 0.0;
  double glue_s = 0.0;
  double modeled_s = 0.0;       ///< Virtual (simulated) share of the sums.

  int64_t shed() const { return shed_queue_full + shed_timeout; }

  void MergeFrom(const OpStats& other);
};

/// \brief Everything a finished workload run reports: achieved throughput,
/// tail latency, error/INF/verification counts, and per-query breakdowns
/// reusing the DM / analytics / glue phase clock.
struct WorkloadReport {
  std::string engine;
  std::string workload_name;
  ClientModel model = ClientModel::kClosedLoop;
  int clients = 0;
  int shards = 1;             ///< Engine shards served through (1 = direct).
  int param_variants = 1;     ///< Distinct parameter variants in the mix.
  uint64_t seed = 0;

  /// Which linalg kernel backend ("scalar" / "simd") produced these numbers,
  /// so fig6–fig8 results are attributable to the kernel variant. Stamped by
  /// WorkloadRunner from simd::ActiveBackend().
  std::string kernel_backend;

  /// Open-loop runs: the offered arrival rate (spec.arrival_rate_qps), so
  /// goodput can be read against load. 0 for closed-loop runs.
  double offered_qps = 0.0;

  /// Set when the run went through a ServingStack; `serving` then holds the
  /// measured-phase delta of cache/admission/shard counters.
  bool has_serving = false;
  serving::ServingCounters serving;

  /// Set when static query plans executed during the measured phase (the
  /// planned column store); `plan` then holds the measured-phase delta of
  /// the plan_* counters (compiles, cache hits, executes, compile ns,
  /// reused bytes) plus the current peak gauges.
  bool has_plan = false;
  plan::PlanStatsSnapshot plan;

  /// True when obs::Profiler was enabled for the measured phase: stage CPU
  /// sums, allocation deltas and `execute_perf` carry data. When false those
  /// fields export as null/absent rather than as misleading zeros.
  bool profiled = false;

  /// Hardware-counter delta attributed to the execute stage over the
  /// measured phase (sum across client threads). reading.valid is false when
  /// perf_event_open was unavailable — exported as nulls.
  obs::ExecutePerfTotals execute_perf;

  double wall_seconds = 0.0;  ///< Measured-phase wall time (real clock).
  OpStats total;
  std::map<core::QueryId, OpStats> per_query;

  /// Wall time of the *modeled* deployment: real wall plus each client's
  /// share of virtual (simulated) seconds. Per-op latencies include virtual
  /// time, so throughput must pay for it too or the two headline metrics
  /// contradict each other for engines with modeled costs (e.g. the UDF
  /// configs' per-invocation overhead). Virtual seconds are serial within a
  /// client; dividing the aggregate by the client count models clients
  /// incurring them concurrently.
  double modeled_wall_seconds() const {
    return wall_seconds + (clients > 0 ? total.modeled_s / clients : 0.0);
  }

  /// Operations that produced a result (shed ops never execute).
  int64_t served_ops() const { return total.ops - total.shed(); }

  /// Successful operations per modeled wall second (goodput — failures and
  /// shed ops excluded, virtual time included).
  double achieved_qps() const {
    const int64_t successes =
        served_ops() - total.errors - total.infs;
    const double wall = modeled_wall_seconds();
    return wall > 0 ? successes / wall : 0.0;
  }

  /// Successful operations per *real* wall second — the clock offered_qps
  /// is defined on. Open-loop goodput-vs-offered comparisons must use this
  /// (achieved_qps divides by the modeled wall, a different clock, and the
  /// two rates are not mutually comparable).
  double real_goodput_qps() const {
    const int64_t successes =
        served_ops() - total.errors - total.infs;
    return wall_seconds > 0 ? successes / wall_seconds : 0.0;
  }
  int64_t failed_ops() const { return total.errors + total.infs; }

  /// One-line summary: "SciDB mixed x4: 118 qps p50=28ms p95=61ms p99=74ms".
  std::string Summary() const;

  /// Compact cell text for throughput/latency grids:
  /// "118qps 28/61/74ms" (p50/p95/p99).
  std::string GridCell() const;

  /// Full human-readable report with the per-query breakdown table (plus
  /// queueing-delay and serving-layer lines when present).
  void Print() const;

  /// Machine-readable dump of everything above (counters, percentiles,
  /// per-query breakdown, serving-layer stats) as one JSON object, so bench
  /// runs can be captured into BENCH_*.json artifacts.
  std::string ToJson() const;
};

}  // namespace genbase::workload

#endif  // GENBASE_WORKLOAD_REPORT_H_
