#ifndef GENBASE_WORKLOAD_WORKLOAD_SPEC_H_
#define GENBASE_WORKLOAD_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/datasets.h"
#include "core/queries.h"

namespace genbase::workload {

/// \brief How clients issue operations.
///  * kClosedLoop: each client issues the next operation as soon as the
///    previous one finishes, after an optional fixed think time — the
///    classic "N concurrent users" model.
///  * kOpenLoopPoisson: operations arrive on a Poisson process at
///    `arrival_rate_qps` (aggregate), independent of completion times —
///    models internet-facing traffic where users do not wait for each other.
///  * kOpenLoopUniform: deterministic arrivals at fixed 1/rate spacing.
enum class ClientModel { kClosedLoop, kOpenLoopPoisson, kOpenLoopUniform };

const char* ClientModelName(ClientModel model);

/// \brief One entry of a query mix: a benchmark query and its relative
/// weight (any positive number; weights are normalized over the mix).
struct QueryMixEntry {
  core::QueryId query = core::QueryId::kRegression;
  double weight = 1.0;
};

/// \brief Full description of a concurrent benchmark workload: what to run
/// (query mix + params + dataset size), how to run it (client model, client
/// count, think time / arrival rate), and how much of it (warm-up and
/// measured operation budgets).
///
/// Everything that shapes the *operation sequence* is derived from `seed`
/// through common/rng, so two runs of the same spec execute the identical
/// sequence of (query, arrival-offset) operations — only measured latencies
/// differ. Durations are specified as operation budgets rather than wall
/// seconds for exactly this reason.
struct WorkloadSpec {
  std::string name = "mixed";

  /// Relative per-query weights. Empty = uniform over Q1..Q5.
  std::vector<QueryMixEntry> mix;
  core::QueryParams params;
  core::DatasetSize size = core::DatasetSize::kSmall;

  ClientModel model = ClientModel::kClosedLoop;
  int clients = 4;
  /// Closed loop: fixed pause between a completion and the next issue.
  double think_time_s = 0.0;
  /// Open loop: aggregate target arrival rate (operations per second).
  double arrival_rate_qps = 50.0;

  /// Operations executed before measurement starts (results discarded).
  int warmup_ops = 0;
  /// Measured operations. The run executes exactly this many.
  int measured_ops = 100;

  /// Per-operation time budget (the paper's INF cutoff).
  double timeout_seconds = 40.0;

  /// Number of distinct parameter variants ops draw from (>= 1). Variant 0
  /// is `params` itself; variant v > 0 is VariantParams(params, v). With V
  /// variants over Q queries a mix has ~Q*V distinct (query, params) keys,
  /// which is the knob serving-cache sweeps turn to target a hit ratio.
  int param_variants = 1;

  uint64_t seed = 42;

  /// Verify every completed operation against core/reference ground truth.
  bool verify = true;

  genbase::Status Validate() const;

  /// The mix with weights normalized to sum 1. An empty mix — or one whose
  /// weights are all zero (rejected by Validate, but reachable through the
  /// pure-function API) — falls back to uniform over Q1..Q5.
  std::vector<QueryMixEntry> NormalizedMix() const;
};

/// \brief One scheduled operation of a workload run.
struct ScheduledOp {
  core::QueryId query = core::QueryId::kRegression;
  /// Parameter variant index in [0, spec.param_variants).
  int variant = 0;
  /// Open-loop models: seconds after the measured phase starts at which
  /// this operation becomes eligible to issue. Zero under closed loop.
  double arrival_offset_s = 0.0;
};

/// \brief Deterministic mild perturbation of the benchmark parameters for
/// variant `v` (v == 0 returns `base` unchanged). Perturbed fields stay
/// inside ranges that are valid at every dataset scale the tests and
/// benches use, so any (query, variant) pair has a computable reference
/// result. Distinct variants produce distinct params fingerprints, which is
/// what makes them distinct serving-cache keys.
core::QueryParams VariantParams(const core::QueryParams& base, int variant);

/// \brief Deterministically expands a spec into its full operation sequence
/// (warm-up followed by measured ops). Draws query ids from the normalized
/// mix and arrival offsets from the client model, all from rng streams
/// derived from (spec.name, spec.seed) — the schedule is a pure function of
/// the spec.
std::vector<ScheduledOp> BuildSchedule(const WorkloadSpec& spec);

}  // namespace genbase::workload

#endif  // GENBASE_WORKLOAD_WORKLOAD_SPEC_H_
