#include "workload/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace genbase::workload {

namespace {
// 1us floor; ~5% geometric growth; enough buckets to pass 1000s.
constexpr double kMinTracked = 1e-6;
constexpr double kGrowth = 1.05;
// ceil(log(1000 / 1e-6) / log(1.05)) == 426.
constexpr int kNumBuckets = 427;
const double kLogGrowth = std::log(kGrowth);
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(double seconds) const {
  if (!(seconds > kMinTracked)) return 0;
  // Clamp while still a double: float→int conversion of an out-of-range
  // value (inf, or anything past INT_MAX) is UB, so the comparison must
  // happen before the cast. The negated form also routes NaN to the cap.
  const double b =
      std::floor(std::log(seconds / kMinTracked) / kLogGrowth) + 1.0;
  if (!(b < kNumBuckets - 1)) return kNumBuckets - 1;
  return std::max(1, static_cast<int>(b));
}

double LatencyHistogram::BucketValue(int bucket) const {
  if (bucket == 0) return kMinTracked;
  // Geometric midpoint of [min * g^(b-1), min * g^b).
  return kMinTracked * std::pow(kGrowth, bucket - 0.5);
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0 || !std::isfinite(seconds)) seconds = 0.0;
  ++buckets_[BucketFor(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double LatencyHistogram::min() const { return count_ == 0 ? 0.0 : min_; }
double LatencyHistogram::max() const { return count_ == 0 ? 0.0 : max_; }

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile observation (1-based, nearest-rank method).
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count_)));
  // The extreme ranks are tracked exactly; everything in between resolves
  // to its bucket's representative value.
  if (rank >= count_) return max_;
  if (rank <= 1) return min_;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketValue(i), min_, max_);
    }
  }
  return max_;
}

}  // namespace genbase::workload
