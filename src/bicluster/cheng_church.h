#ifndef GENBASE_BICLUSTER_CHENG_CHURCH_H_
#define GENBASE_BICLUSTER_CHENG_CHURCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::bicluster {

/// \brief A bicluster: a subset of rows and columns whose submatrix has low
/// mean squared residue (rows and columns move together).
struct Bicluster {
  std::vector<int64_t> rows;
  std::vector<int64_t> cols;
  double mean_squared_residue = 0.0;
};

struct ChengChurchOptions {
  double delta = 0.1;          ///< Max acceptable mean squared residue.
  double alpha = 1.2;          ///< Multiple-deletion aggressiveness.
  int max_biclusters = 4;      ///< Successive biclusters to extract.
  int64_t min_rows = 2;
  int64_t min_cols = 2;
  uint64_t mask_seed = 7;      ///< Seed for masking found cells.

  /// Invoked once per algorithm pass (each deletion round / addition phase).
  /// Engines that run the algorithm through a per-call interface (the column
  /// store's R UDFs) use this to charge their per-invocation overhead; a
  /// non-OK status aborts the run.
  std::function<genbase::Status()> pass_hook;
};

/// \brief Mean squared residue H(I, J) of a submatrix selection: the
/// Cheng & Church (ISMB 2000) homogeneity score,
///   H = mean_(i,j) (a_ij - a_iJ - a_Ij + a_IJ)^2.
double MeanSquaredResidue(const linalg::MatrixView& m,
                          const std::vector<int64_t>& rows,
                          const std::vector<int64_t>& cols);

/// \brief Cheng & Church biclustering: multiple node deletion, single node
/// deletion, then node addition; successive biclusters are found after
/// masking previous ones with random noise. This is GenBase Query 3's
/// analytics step ("biclustering allows the simultaneous clustering of rows
/// and columns of a matrix into sub-matrices with similar patterns").
///
/// The input matrix is copied internally (masking mutates it).
genbase::Result<std::vector<Bicluster>> ChengChurch(
    const linalg::MatrixView& data, const ChengChurchOptions& options,
    ExecContext* ctx = nullptr);

}  // namespace genbase::bicluster

#endif  // GENBASE_BICLUSTER_CHENG_CHURCH_H_
