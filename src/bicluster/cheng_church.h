#ifndef GENBASE_BICLUSTER_CHENG_CHURCH_H_
#define GENBASE_BICLUSTER_CHENG_CHURCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace genbase::bicluster {

/// \brief A bicluster: a subset of rows and columns whose submatrix has low
/// mean squared residue (rows and columns move together).
struct Bicluster {
  std::vector<int64_t> rows;
  std::vector<int64_t> cols;
  double mean_squared_residue = 0.0;
};

/// \brief Which residue engine drives the deletion/addition phases.
///
/// kIncremental maintains row/col sums, sums of squares and the squared-
/// residue accumulator under single-node deletion/addition: per-iteration
/// stat updates cost O(|I|+|J|), the mean squared residue H comes from the
/// two-way ANOVA identity SSQ = Q - sum(S_r^2)/|J| - sum(S_c^2)/|I| +
/// T^2/(|I||J|) in O(|I|+|J|), and the per-row/per-column residues reduce
/// to two Gemv calls (2 FLOPs per cell) against a packed working submatrix
/// instead of four scalar residue passes.
///
/// kReference is the original from-scratch implementation (recomputes
/// SubmatrixStats + Msr + RowResidues + ColResidues every iteration). Kept
/// as the cross-check oracle and the baseline kernelbench measures against.
enum class ChengChurchImpl { kIncremental, kReference };

/// \brief Work accounting for the residue engines, so the FLOP reduction is
/// a measured number, not a claim. Counted analytically at each pass from
/// the touched cell count.
struct ChengChurchCounters {
  int64_t residue_flops = 0;  ///< FLOPs spent on stats/residue computation.
  int64_t iterations = 0;     ///< Deletion rounds + addition phases run.
};

struct ChengChurchOptions {
  double delta = 0.1;          ///< Max acceptable mean squared residue.
  double alpha = 1.2;          ///< Multiple-deletion aggressiveness.
  int max_biclusters = 4;      ///< Successive biclusters to extract.
  int64_t min_rows = 2;
  int64_t min_cols = 2;
  uint64_t mask_seed = 7;      ///< Seed for masking found cells.

  ChengChurchImpl impl = ChengChurchImpl::kIncremental;

  /// Debug cross-check: after every incremental iteration, recompute stats
  /// and residues from scratch via the reference helpers and fail loudly on
  /// divergence beyond FP noise. O(|I|*|J|) per iteration — tests only.
  bool cross_check = false;

  /// Optional work accounting (see ChengChurchCounters). Not owned.
  ChengChurchCounters* counters = nullptr;

  /// Invoked once per algorithm pass (each deletion round / addition phase).
  /// Engines that run the algorithm through a per-call interface (the column
  /// store's R UDFs) use this to charge their per-invocation overhead; a
  /// non-OK status aborts the run.
  std::function<genbase::Status()> pass_hook;
};

/// \brief Mean squared residue H(I, J) of a submatrix selection: the
/// Cheng & Church (ISMB 2000) homogeneity score,
///   H = mean_(i,j) (a_ij - a_iJ - a_Ij + a_IJ)^2.
double MeanSquaredResidue(const linalg::MatrixView& m,
                          const std::vector<int64_t>& rows,
                          const std::vector<int64_t>& cols);

/// \brief Cheng & Church biclustering: multiple node deletion, single node
/// deletion, then node addition; successive biclusters are found after
/// masking previous ones with random noise. This is GenBase Query 3's
/// analytics step ("biclustering allows the simultaneous clustering of rows
/// and columns of a matrix into sub-matrices with similar patterns").
///
/// The input matrix is copied internally (masking mutates it). Results are
/// deterministic for a given (input, options) pair. The two impls may pick
/// different nodes when residues tie exactly, and may keep different
/// survivors when the min_rows/min_cols floor truncates a multiple-deletion
/// round (the incremental engine scans rows/cols in packed order, the
/// reference in original order); both always honor delta/alpha and the
/// floors.
genbase::Result<std::vector<Bicluster>> ChengChurch(
    const linalg::MatrixView& data, const ChengChurchOptions& options,
    ExecContext* ctx = nullptr);

}  // namespace genbase::bicluster

#endif  // GENBASE_BICLUSTER_CHENG_CHURCH_H_
