#include "bicluster/cheng_church.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/rng.h"
#include "linalg/blas.h"

namespace genbase::bicluster {

namespace {

void CountFlops(ChengChurchCounters* counters, int64_t flops) {
  if (counters != nullptr) counters->residue_flops += flops;
}

void CountIteration(ChengChurchCounters* counters) {
  if (counters != nullptr) ++counters->iterations;
}

/// --- from-scratch helpers (reference impl + cross-check oracle) -------------

/// Row/column means and the overall mean of the selected submatrix.
struct SubmatrixStats {
  std::vector<double> row_mean;   // Indexed by position in `rows`.
  std::vector<double> col_mean;   // Indexed by position in `cols`.
  double mean = 0.0;
};

SubmatrixStats ComputeStats(const linalg::MatrixView& m,
                            const std::vector<int64_t>& rows,
                            const std::vector<int64_t>& cols) {
  SubmatrixStats s;
  s.row_mean.assign(rows.size(), 0.0);
  s.col_mean.assign(cols.size(), 0.0);
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    const double* row = m.data + rows[ri] * m.stride;
    double acc = 0.0;
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      const double v = row[cols[ci]];
      acc += v;
      s.col_mean[ci] += v;
    }
    s.row_mean[ri] = acc / static_cast<double>(cols.size());
    s.mean += acc;
  }
  const double cells =
      static_cast<double>(rows.size()) * static_cast<double>(cols.size());
  for (auto& c : s.col_mean) c /= static_cast<double>(rows.size());
  s.mean /= cells;
  return s;
}

double Residue(const linalg::MatrixView& m, const SubmatrixStats& s,
               const std::vector<int64_t>& rows,
               const std::vector<int64_t>& cols, size_t ri, size_t ci) {
  const double v = m(rows[ri], cols[ci]);
  const double r = v - s.row_mean[ri] - s.col_mean[ci] + s.mean;
  return r * r;
}

double Msr(const linalg::MatrixView& m, const SubmatrixStats& s,
           const std::vector<int64_t>& rows,
           const std::vector<int64_t>& cols) {
  double acc = 0.0;
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      acc += Residue(m, s, rows, cols, ri, ci);
    }
  }
  return acc / (static_cast<double>(rows.size()) *
                static_cast<double>(cols.size()));
}

/// Per-row mean squared residue d(i); analogous for columns.
std::vector<double> RowResidues(const linalg::MatrixView& m,
                                const SubmatrixStats& s,
                                const std::vector<int64_t>& rows,
                                const std::vector<int64_t>& cols) {
  std::vector<double> d(rows.size(), 0.0);
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    double acc = 0.0;
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      acc += Residue(m, s, rows, cols, ri, ci);
    }
    d[ri] = acc / static_cast<double>(cols.size());
  }
  return d;
}

std::vector<double> ColResidues(const linalg::MatrixView& m,
                                const SubmatrixStats& s,
                                const std::vector<int64_t>& rows,
                                const std::vector<int64_t>& cols) {
  std::vector<double> d(cols.size(), 0.0);
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    double acc = 0.0;
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      acc += Residue(m, s, rows, cols, ri, ci);
    }
    d[ci] = acc / static_cast<double>(rows.size());
  }
  return d;
}

template <typename T>
void RemoveIndices(std::vector<T>* v, const std::vector<size_t>& positions) {
  if (positions.empty()) return;
  std::vector<T> out;
  out.reserve(v->size() - positions.size());
  size_t pi = 0;
  for (size_t i = 0; i < v->size(); ++i) {
    if (pi < positions.size() && positions[pi] == i) {
      ++pi;
      continue;
    }
    out.push_back((*v)[i]);
  }
  *v = std::move(out);
}

/// Per-cell FLOP weights of the from-scratch passes (for the counters).
constexpr int64_t kStatsFlops = 2;    // two accumulations per cell
constexpr int64_t kResidueFlops = 5;  // 3 adds + 1 mul + 1 accumulate

/// --- incremental residue engine ---------------------------------------------

/// The state the incremental impl maintains for the live submatrix: a packed
/// working copy (swap-remove rows/cols, so the live |I| x |J| block stays
/// dense and Gemv-able) plus marginal sums and sums of squares. Single-node
/// deletion updates everything in O(|I|+|J|); H comes from the ANOVA
/// identity in O(|I|+|J|); row/col residues are two Gemv calls.
///
/// To bound FP drift from long subtract chains, all accumulators are
/// recomputed from the packed matrix every kRefreshInterval removals.
class IncrementalCluster {
 public:
  static constexpr int64_t kRefreshInterval = 512;

  /// Copies the (rows x cols) prefix of `m` (the full masked matrix).
  IncrementalCluster(const linalg::MatrixView& m,
                     ChengChurchCounters* counters)
      : stride_(m.cols),
        nrows_(m.rows),
        ncols_(m.cols),
        counters_(counters) {
    pw_.resize(static_cast<size_t>(m.rows * m.cols));
    for (int64_t i = 0; i < m.rows; ++i) {
      std::memcpy(pw_.data() + i * stride_, m.data + i * m.stride,
                  static_cast<size_t>(m.cols) * sizeof(double));
    }
    row_ids_.resize(static_cast<size_t>(nrows_));
    col_ids_.resize(static_cast<size_t>(ncols_));
    std::iota(row_ids_.begin(), row_ids_.end(), 0);
    std::iota(col_ids_.begin(), col_ids_.end(), 0);
    Refresh();
  }

  int64_t nrows() const { return nrows_; }
  int64_t ncols() const { return ncols_; }
  const std::vector<int64_t>& row_ids() const { return row_ids_; }
  const std::vector<int64_t>& col_ids() const { return col_ids_; }
  double mean() const { return total_ / Cells(); }

  linalg::MatrixView View() const {
    return linalg::MatrixView(pw_.data(), nrows_, ncols_, stride_);
  }

  /// Mean squared residue of the live submatrix, O(|I|+|J|):
  /// SSQ = Q - sum_i S_r(i)^2/|J| - sum_j S_c(j)^2/|I| + T^2/(|I||J|).
  double H() const {
    double r2 = 0.0;
    for (int64_t i = 0; i < nrows_; ++i) r2 += row_sum_[i] * row_sum_[i];
    double c2 = 0.0;
    for (int64_t j = 0; j < ncols_; ++j) c2 += col_sum_[j] * col_sum_[j];
    const double cells = Cells();
    const double ssq = total_sq_ - r2 / static_cast<double>(ncols_) -
                       c2 / static_cast<double>(nrows_) +
                       total_ * total_ / cells;
    CountFlops(counters_, 2 * (nrows_ + ncols_) + 8);
    return std::max(0.0, ssq / cells);
  }

  /// d(i) for every live row, via the column-centered accumulator
  ///   V_i = sum_j (a_ij - c_j)^2,  d(i)|J| = V_i - |J| (r_i - mu)^2.
  /// V is maintained exactly under column deletion (removing a column does
  /// not change the other columns' means, so V_i just loses one term) and
  /// rebuilt with one Gemv — 2 FLOPs/cell — after row deletions invalidate
  /// it. Most iterations delete one node, so only one of V/W needs the
  /// Gemv rebuild per iteration.
  const std::vector<double>& RowResiduesFast(ThreadPool* pool) {
    if (!v_valid_) RecomputeV(pool);
    const double mu = mean();
    const double nj = static_cast<double>(ncols_);
    d_row_.resize(static_cast<size_t>(nrows_));
    for (int64_t i = 0; i < nrows_; ++i) {
      const double dev = row_sum_[i] / nj - mu;
      d_row_[i] = std::max(0.0, (v_[i] - nj * dev * dev) / nj);
    }
    CountFlops(counters_, 5 * nrows_);
    return d_row_;
  }

  /// d(j) for every live column via W_j = sum_i (a_ij - r_i)^2 (row means
  /// are unchanged by row deletion, so W updates exactly in O(|J|) there
  /// and is rebuilt with one GemvTranspose after column deletions).
  const std::vector<double>& ColResiduesFast(ThreadPool* pool) {
    if (!w_valid_) RecomputeW(pool);
    const double mu = mean();
    const double ni = static_cast<double>(nrows_);
    d_col_.resize(static_cast<size_t>(ncols_));
    for (int64_t j = 0; j < ncols_; ++j) {
      const double dev = col_sum_[j] / ni - mu;
      d_col_[j] = std::max(0.0, (w_[j] - ni * dev * dev) / ni);
    }
    CountFlops(counters_, 5 * ncols_);
    return d_col_;
  }

  /// Removes the rows at the given packed positions (any order). O(k|J|).
  void RemoveRows(std::vector<size_t> positions) {
    std::sort(positions.begin(), positions.end(), std::greater<size_t>());
    for (size_t p : positions) RemoveRow(static_cast<int64_t>(p));
  }

  void RemoveCols(std::vector<size_t> positions) {
    std::sort(positions.begin(), positions.end(), std::greater<size_t>());
    for (size_t p : positions) RemoveCol(static_cast<int64_t>(p));
  }

  /// Removes one row by packed position: marginals updated in O(|J|), the
  /// last row swapped into the hole. W stays exact (row means of the other
  /// rows are untouched — its term for this row is just subtracted); V is
  /// invalidated (every column mean shifts).
  void RemoveRow(int64_t p) {
    const double* row = pw_.data() + p * stride_;
    if (w_valid_) {
      const double rp = row_sum_[p] / static_cast<double>(ncols_);
      for (int64_t j = 0; j < ncols_; ++j) {
        const double d = row[j] - rp;
        w_[j] -= d * d;
      }
      CountFlops(counters_, 3 * ncols_);
    }
    v_valid_ = false;
    for (int64_t j = 0; j < ncols_; ++j) {
      const double v = row[j];
      col_sum_[j] -= v;
      col_sq_[j] -= v * v;
    }
    total_ -= row_sum_[p];
    total_sq_ -= row_sq_[p];
    CountFlops(counters_, 3 * ncols_ + 2);
    const int64_t last = nrows_ - 1;
    if (p != last) {
      std::memcpy(pw_.data() + p * stride_, pw_.data() + last * stride_,
                  static_cast<size_t>(ncols_) * sizeof(double));
      row_ids_[p] = row_ids_[last];
      row_sum_[p] = row_sum_[last];
      row_sq_[p] = row_sq_[last];
    }
    --nrows_;
    row_ids_.resize(static_cast<size_t>(nrows_));
    row_sum_.resize(static_cast<size_t>(nrows_));
    row_sq_.resize(static_cast<size_t>(nrows_));
    MaybeRefresh();
  }

  /// Removes one column by packed position: O(|I|). V stays exact, W is
  /// invalidated (mirror of RemoveRow).
  void RemoveCol(int64_t p) {
    if (v_valid_) {
      const double cp = col_sum_[p] / static_cast<double>(nrows_);
      for (int64_t i = 0; i < nrows_; ++i) {
        const double d = pw_[i * stride_ + p] - cp;
        v_[i] -= d * d;
      }
      CountFlops(counters_, 3 * nrows_);
    }
    w_valid_ = false;
    const int64_t last = ncols_ - 1;
    for (int64_t i = 0; i < nrows_; ++i) {
      double* row = pw_.data() + i * stride_;
      const double v = row[p];
      row_sum_[i] -= v;
      row_sq_[i] -= v * v;
      if (p != last) row[p] = row[last];
    }
    total_ -= col_sum_[p];
    total_sq_ -= col_sq_[p];
    CountFlops(counters_, 3 * nrows_ + 2);
    if (p != last) {
      col_ids_[p] = col_ids_[last];
      col_sum_[p] = col_sum_[last];
      col_sq_[p] = col_sq_[last];
    }
    --ncols_;
    col_ids_.resize(static_cast<size_t>(ncols_));
    col_sum_.resize(static_cast<size_t>(ncols_));
    col_sq_.resize(static_cast<size_t>(ncols_));
    MaybeRefresh();
  }

  /// Appends an original-matrix column (values from `src`, original column
  /// id `orig`) to the live set. O(|I|).
  void AddCol(const linalg::MatrixView& src, int64_t orig) {
    double sum = 0.0, sq = 0.0;
    for (int64_t i = 0; i < nrows_; ++i) {
      const double v = src(row_ids_[i], orig);
      pw_[i * stride_ + ncols_] = v;
      row_sum_[i] += v;
      row_sq_[i] += v * v;
      sum += v;
      sq += v * v;
    }
    col_ids_.push_back(orig);
    col_sum_.push_back(sum);
    col_sq_.push_back(sq);
    total_ += sum;
    total_sq_ += sq;
    CountFlops(counters_, 7 * nrows_ + 2);
    ++ncols_;
    v_valid_ = false;
    w_valid_ = false;
  }

  /// Appends an original-matrix row. O(|J|). Requires spare row capacity
  /// (always true: the packed buffer is allocated at full size and rows are
  /// only re-added after deletion).
  void AddRow(const linalg::MatrixView& src, int64_t orig) {
    double sum = 0.0, sq = 0.0;
    const double* srow = src.data + orig * src.stride;
    double* drow = pw_.data() + nrows_ * stride_;
    for (int64_t j = 0; j < ncols_; ++j) {
      const double v = srow[col_ids_[j]];
      drow[j] = v;
      col_sum_[j] += v;
      col_sq_[j] += v * v;
      sum += v;
      sq += v * v;
    }
    row_ids_.push_back(orig);
    row_sum_.push_back(sum);
    row_sq_.push_back(sq);
    total_ += sum;
    total_sq_ += sq;
    CountFlops(counters_, 7 * ncols_ + 2);
    ++nrows_;
    v_valid_ = false;
    w_valid_ = false;
  }

  /// Row means of the live submatrix (packed order), O(|I|).
  const std::vector<double>& FillRowMeans() {
    row_mean_.resize(static_cast<size_t>(nrows_));
    const double nj = static_cast<double>(ncols_);
    for (int64_t i = 0; i < nrows_; ++i) row_mean_[i] = row_sum_[i] / nj;
    return row_mean_;
  }

  const std::vector<double>& FillColMeans() {
    col_mean_.resize(static_cast<size_t>(ncols_));
    const double ni = static_cast<double>(nrows_);
    for (int64_t j = 0; j < ncols_; ++j) col_mean_[j] = col_sum_[j] / ni;
    return col_mean_;
  }

  /// Recomputes every accumulator from the packed matrix. O(|I||J|).
  void Refresh() {
    row_sum_.assign(static_cast<size_t>(nrows_), 0.0);
    row_sq_.assign(static_cast<size_t>(nrows_), 0.0);
    col_sum_.assign(static_cast<size_t>(ncols_), 0.0);
    col_sq_.assign(static_cast<size_t>(ncols_), 0.0);
    total_ = 0.0;
    total_sq_ = 0.0;
    for (int64_t i = 0; i < nrows_; ++i) {
      const double* row = pw_.data() + i * stride_;
      double sum = 0.0, sq = 0.0;
      for (int64_t j = 0; j < ncols_; ++j) {
        const double v = row[j];
        sum += v;
        sq += v * v;
        col_sum_[j] += v;
        col_sq_[j] += v * v;
      }
      row_sum_[i] = sum;
      row_sq_[i] = sq;
      total_ += sum;
      total_sq_ += sq;
    }
    CountFlops(counters_, 4 * nrows_ * ncols_);
    removals_since_refresh_ = 0;
    v_valid_ = false;
    w_valid_ = false;
  }

 private:
  double Cells() const {
    return static_cast<double>(nrows_) * static_cast<double>(ncols_);
  }

  void MaybeRefresh() {
    if (++removals_since_refresh_ >= kRefreshInterval) Refresh();
  }

  /// V_i = Qr_i - 2 (A c)_i + sum_j c_j^2: one Gemv over the live block.
  void RecomputeV(ThreadPool* pool) {
    FillColMeans();
    double c2 = 0.0;
    for (int64_t j = 0; j < ncols_; ++j) c2 += col_mean_[j] * col_mean_[j];
    tmp_row_.resize(static_cast<size_t>(nrows_));
    linalg::Gemv(View(), col_mean_.data(), tmp_row_.data(), pool);
    v_.resize(static_cast<size_t>(nrows_));
    for (int64_t i = 0; i < nrows_; ++i) {
      v_[i] = row_sq_[i] - 2.0 * tmp_row_[i] + c2;
    }
    CountFlops(counters_, 2 * nrows_ * ncols_ + 3 * nrows_ + 3 * ncols_);
    v_valid_ = true;
  }

  /// W_j = Qc_j - 2 (A^T r)_j + sum_i r_i^2: one GemvTranspose.
  void RecomputeW(ThreadPool* pool) {
    FillRowMeans();
    double r2 = 0.0;
    for (int64_t i = 0; i < nrows_; ++i) r2 += row_mean_[i] * row_mean_[i];
    tmp_col_.resize(static_cast<size_t>(ncols_));
    linalg::GemvTranspose(View(), row_mean_.data(), tmp_col_.data(), pool);
    w_.resize(static_cast<size_t>(ncols_));
    for (int64_t j = 0; j < ncols_; ++j) {
      w_[j] = col_sq_[j] - 2.0 * tmp_col_[j] + r2;
    }
    CountFlops(counters_, 2 * nrows_ * ncols_ + 3 * ncols_ + 3 * nrows_);
    w_valid_ = true;
  }

  std::vector<double> pw_;
  int64_t stride_;
  int64_t nrows_;
  int64_t ncols_;
  std::vector<int64_t> row_ids_, col_ids_;
  std::vector<double> row_sum_, row_sq_;
  std::vector<double> col_sum_, col_sq_;
  double total_ = 0.0;
  double total_sq_ = 0.0;
  int64_t removals_since_refresh_ = 0;
  ChengChurchCounters* counters_;

  // Lazily-maintained squared-residue accumulators (see RowResiduesFast).
  std::vector<double> v_, w_;
  bool v_valid_ = false;
  bool w_valid_ = false;

  // Scratch reused across iterations.
  std::vector<double> row_mean_, col_mean_, d_row_, d_col_, tmp_row_,
      tmp_col_;
};

/// Cross-check: recompute stats from scratch on the live index sets and
/// compare against the incremental engine's view.
genbase::Status CrossCheck(const IncrementalCluster& inc, double h,
                           const std::vector<double>* d_row,
                           const std::vector<double>* d_col) {
  const linalg::MatrixView v = inc.View();
  std::vector<int64_t> rows(static_cast<size_t>(inc.nrows()));
  std::vector<int64_t> cols(static_cast<size_t>(inc.ncols()));
  std::iota(rows.begin(), rows.end(), 0);
  std::iota(cols.begin(), cols.end(), 0);
  const SubmatrixStats s = ComputeStats(v, rows, cols);
  auto close = [](double a, double b) {
    return std::fabs(a - b) <= 1e-6 * std::max({1.0, std::fabs(a),
                                                std::fabs(b)});
  };
  if (!close(h, Msr(v, s, rows, cols))) {
    return genbase::Status::Internal("cheng-church cross-check: H diverged");
  }
  if (d_row != nullptr) {
    const std::vector<double> ref = RowResidues(v, s, rows, cols);
    for (size_t i = 0; i < ref.size(); ++i) {
      if (!close((*d_row)[i], ref[i])) {
        return genbase::Status::Internal(
            "cheng-church cross-check: row residue diverged");
      }
    }
  }
  if (d_col != nullptr) {
    const std::vector<double> ref = ColResidues(v, s, rows, cols);
    for (size_t j = 0; j < ref.size(); ++j) {
      if (!close((*d_col)[j], ref[j])) {
        return genbase::Status::Internal(
            "cheng-church cross-check: col residue diverged");
      }
    }
  }
  return genbase::Status::OK();
}

/// One bicluster extraction with the incremental engine. `wv` is the masked
/// working matrix.
genbase::Result<Bicluster> ExtractIncremental(
    const linalg::MatrixView& wv, const ChengChurchOptions& options,
    ExecContext* ctx) {
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  IncrementalCluster inc(wv, options.counters);

  // Phase 1: multiple node deletion while the matrix is large.
  for (;;) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
    CountIteration(options.counters);
    const double h = inc.H();
    if (options.cross_check) {
      GENBASE_RETURN_NOT_OK(CrossCheck(inc, h, nullptr, nullptr));
    }
    if (h <= options.delta) break;
    bool changed = false;
    if (inc.nrows() > 100) {
      const std::vector<double>& d = inc.RowResiduesFast(pool);
      if (options.cross_check) {
        GENBASE_RETURN_NOT_OK(CrossCheck(inc, h, &d, nullptr));
      }
      std::vector<size_t> to_remove;
      for (int64_t i = 0; i < inc.nrows(); ++i) {
        if (d[i] > options.alpha * h &&
            inc.nrows() - static_cast<int64_t>(to_remove.size()) >
                options.min_rows) {
          to_remove.push_back(static_cast<size_t>(i));
        }
      }
      if (!to_remove.empty()) {
        inc.RemoveRows(std::move(to_remove));
        changed = true;
      }
    }
    if (inc.ncols() > 100) {
      const double h2 = inc.H();
      const std::vector<double>& d = inc.ColResiduesFast(pool);
      if (options.cross_check) {
        GENBASE_RETURN_NOT_OK(CrossCheck(inc, h2, nullptr, &d));
      }
      std::vector<size_t> to_remove;
      for (int64_t j = 0; j < inc.ncols(); ++j) {
        if (d[j] > options.alpha * h2 &&
            inc.ncols() - static_cast<int64_t>(to_remove.size()) >
                options.min_cols) {
          to_remove.push_back(static_cast<size_t>(j));
        }
      }
      if (!to_remove.empty()) {
        inc.RemoveCols(std::move(to_remove));
        changed = true;
      }
    }
    if (!changed) break;  // Fall through to single deletion.
  }

  // Phase 2: single node deletion until H <= delta. Stats update in
  // O(|I|+|J|) per deletion; the residue sweeps are the two Gemv calls.
  for (;;) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
    CountIteration(options.counters);
    const double h = inc.H();
    if (h <= options.delta) break;
    const std::vector<double>& dr = inc.RowResiduesFast(pool);
    const std::vector<double>& dc = inc.ColResiduesFast(pool);
    if (options.cross_check) {
      GENBASE_RETURN_NOT_OK(CrossCheck(inc, h, &dr, &dc));
    }
    const auto max_row = std::max_element(dr.begin(), dr.end());
    const auto max_col = std::max_element(dc.begin(), dc.end());
    const bool can_drop_row = inc.nrows() > options.min_rows;
    const bool can_drop_col = inc.ncols() > options.min_cols;
    if (!can_drop_row && !can_drop_col) break;
    const bool drop_row =
        can_drop_row && (!can_drop_col || *max_row >= *max_col);
    if (drop_row) {
      inc.RemoveRow(max_row - dr.begin());
    } else {
      inc.RemoveCol(max_col - dc.begin());
    }
  }

  // Phase 3: node addition — add back columns then rows that fit the
  // cluster. Candidate tests read the masked matrix (original indices);
  // accepted nodes are appended to the packed state in O(|I|) / O(|J|).
  {
    if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
    CountIteration(options.counters);
    const double h = inc.H();
    const std::vector<double> row_mean = inc.FillRowMeans();
    const double mu = inc.mean();
    std::vector<bool> in_rows(static_cast<size_t>(wv.rows), false);
    for (int64_t r : inc.row_ids()) in_rows[static_cast<size_t>(r)] = true;
    std::vector<bool> in_cols(static_cast<size_t>(wv.cols), false);
    for (int64_t c : inc.col_ids()) in_cols[static_cast<size_t>(c)] = true;
    for (int64_t c = 0; c < wv.cols; ++c) {
      if (in_cols[static_cast<size_t>(c)]) continue;
      const std::vector<int64_t>& rows = inc.row_ids();
      double cmean = 0.0;
      for (int64_t r : rows) cmean += wv(r, c);
      cmean /= static_cast<double>(rows.size());
      double acc = 0.0;
      for (size_t ri = 0; ri < rows.size(); ++ri) {
        const double res = wv(rows[ri], c) - row_mean[ri] - cmean + mu;
        acc += res * res;
      }
      CountFlops(options.counters,
                 6 * static_cast<int64_t>(rows.size()) + 2);
      if (acc / static_cast<double>(rows.size()) <= h) {
        inc.AddCol(wv, c);
        in_cols[static_cast<size_t>(c)] = true;
      }
    }
    // Refresh the cluster view with the enlarged column set before row
    // addition (mirrors the reference impl's second ComputeStats).
    const double h2 = inc.H();
    const std::vector<double> col_mean = inc.FillColMeans();
    const double mu2 = inc.mean();
    for (int64_t r = 0; r < wv.rows; ++r) {
      if (in_rows[static_cast<size_t>(r)]) continue;
      const std::vector<int64_t>& cols = inc.col_ids();
      double rmean = 0.0;
      for (int64_t c : cols) rmean += wv(r, c);
      rmean /= static_cast<double>(cols.size());
      double acc = 0.0;
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        const double res = wv(r, cols[ci]) - rmean - col_mean[ci] + mu2;
        acc += res * res;
      }
      CountFlops(options.counters,
                 6 * static_cast<int64_t>(cols.size()) + 2);
      if (acc / static_cast<double>(cols.size()) <= h2) {
        inc.AddRow(wv, r);
        in_rows[static_cast<size_t>(r)] = true;
      }
    }
    if (options.cross_check) {
      GENBASE_RETURN_NOT_OK(CrossCheck(inc, inc.H(), nullptr, nullptr));
    }
  }

  Bicluster bc;
  bc.rows = inc.row_ids();
  bc.cols = inc.col_ids();
  std::sort(bc.rows.begin(), bc.rows.end());
  std::sort(bc.cols.begin(), bc.cols.end());
  return bc;
}

/// One bicluster extraction with the original from-scratch engine.
genbase::Result<Bicluster> ExtractReference(
    const linalg::MatrixView& wv, const ChengChurchOptions& options,
    ExecContext* ctx) {
  std::vector<int64_t> rows(static_cast<size_t>(wv.rows));
  std::vector<int64_t> cols(static_cast<size_t>(wv.cols));
  std::iota(rows.begin(), rows.end(), 0);
  std::iota(cols.begin(), cols.end(), 0);
  const auto cells = [&]() {
    return static_cast<int64_t>(rows.size()) *
           static_cast<int64_t>(cols.size());
  };

  // Phase 1: multiple node deletion while the matrix is large.
  for (;;) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
    CountIteration(options.counters);
    SubmatrixStats s = ComputeStats(wv, rows, cols);
    const double h = Msr(wv, s, rows, cols);
    CountFlops(options.counters, (kStatsFlops + kResidueFlops) * cells());
    if (h <= options.delta) break;
    bool changed = false;
    if (static_cast<int64_t>(rows.size()) > 100) {
      const std::vector<double> d = RowResidues(wv, s, rows, cols);
      CountFlops(options.counters, kResidueFlops * cells());
      std::vector<size_t> to_remove;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (d[i] > options.alpha * h &&
            static_cast<int64_t>(rows.size() - to_remove.size()) >
                options.min_rows) {
          to_remove.push_back(i);
        }
      }
      if (!to_remove.empty()) {
        RemoveIndices(&rows, to_remove);
        changed = true;
        s = ComputeStats(wv, rows, cols);
        CountFlops(options.counters, kStatsFlops * cells());
      }
    }
    if (static_cast<int64_t>(cols.size()) > 100) {
      const double h2 = Msr(wv, s, rows, cols);
      const std::vector<double> d = ColResidues(wv, s, rows, cols);
      CountFlops(options.counters, 2 * kResidueFlops * cells());
      std::vector<size_t> to_remove;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (d[i] > options.alpha * h2 &&
            static_cast<int64_t>(cols.size() - to_remove.size()) >
                options.min_cols) {
          to_remove.push_back(i);
        }
      }
      if (!to_remove.empty()) {
        RemoveIndices(&cols, to_remove);
        changed = true;
      }
    }
    if (!changed) break;  // Fall through to single deletion.
  }

  // Phase 2: single node deletion until H <= delta.
  for (;;) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
    CountIteration(options.counters);
    const SubmatrixStats s = ComputeStats(wv, rows, cols);
    const double h = Msr(wv, s, rows, cols);
    CountFlops(options.counters, (kStatsFlops + kResidueFlops) * cells());
    if (h <= options.delta) break;
    const std::vector<double> dr = RowResidues(wv, s, rows, cols);
    const std::vector<double> dc = ColResidues(wv, s, rows, cols);
    CountFlops(options.counters, 2 * kResidueFlops * cells());
    const auto max_row = std::max_element(dr.begin(), dr.end());
    const auto max_col = std::max_element(dc.begin(), dc.end());
    const bool can_drop_row =
        static_cast<int64_t>(rows.size()) > options.min_rows;
    const bool can_drop_col =
        static_cast<int64_t>(cols.size()) > options.min_cols;
    if (!can_drop_row && !can_drop_col) break;
    const bool drop_row =
        can_drop_row && (!can_drop_col || *max_row >= *max_col);
    if (drop_row) {
      rows.erase(rows.begin() + (max_row - dr.begin()));
    } else {
      cols.erase(cols.begin() + (max_col - dc.begin()));
    }
  }

  // Phase 3: node addition — add back rows/columns that fit.
  {
    if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
    CountIteration(options.counters);
    const SubmatrixStats s = ComputeStats(wv, rows, cols);
    const double h = Msr(wv, s, rows, cols);
    CountFlops(options.counters, (kStatsFlops + kResidueFlops) * cells());
    std::vector<bool> in_rows(static_cast<size_t>(wv.rows), false);
    for (int64_t r : rows) in_rows[static_cast<size_t>(r)] = true;
    std::vector<bool> in_cols(static_cast<size_t>(wv.cols), false);
    for (int64_t c : cols) in_cols[static_cast<size_t>(c)] = true;
    for (int64_t c = 0; c < wv.cols; ++c) {
      if (in_cols[static_cast<size_t>(c)]) continue;
      double acc = 0.0;
      double cmean = 0.0;
      for (int64_t r : rows) cmean += wv(r, c);
      cmean /= static_cast<double>(rows.size());
      for (size_t ri = 0; ri < rows.size(); ++ri) {
        const double res =
            wv(rows[ri], c) - s.row_mean[ri] - cmean + s.mean;
        acc += res * res;
      }
      CountFlops(options.counters,
                 6 * static_cast<int64_t>(rows.size()) + 2);
      if (acc / static_cast<double>(rows.size()) <= h) {
        cols.push_back(c);
        in_cols[static_cast<size_t>(c)] = true;
      }
    }
    // Recompute stats with the enlarged column set before row addition.
    const SubmatrixStats s2 = ComputeStats(wv, rows, cols);
    const double h2 = Msr(wv, s2, rows, cols);
    CountFlops(options.counters, (kStatsFlops + kResidueFlops) * cells());
    for (int64_t r = 0; r < wv.rows; ++r) {
      if (in_rows[static_cast<size_t>(r)]) continue;
      double rmean = 0.0;
      for (int64_t c : cols) rmean += wv(r, c);
      rmean /= static_cast<double>(cols.size());
      double acc = 0.0;
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        const double res =
            wv(r, cols[ci]) - rmean - s2.col_mean[ci] + s2.mean;
        acc += res * res;
      }
      CountFlops(options.counters,
                 6 * static_cast<int64_t>(cols.size()) + 2);
      if (acc / static_cast<double>(cols.size()) <= h2) {
        rows.push_back(r);
        in_rows[static_cast<size_t>(r)] = true;
      }
    }
  }

  std::sort(rows.begin(), rows.end());
  std::sort(cols.begin(), cols.end());
  Bicluster bc;
  bc.rows = std::move(rows);
  bc.cols = std::move(cols);
  return bc;
}

}  // namespace

double MeanSquaredResidue(const linalg::MatrixView& m,
                          const std::vector<int64_t>& rows,
                          const std::vector<int64_t>& cols) {
  if (rows.empty() || cols.empty()) return 0.0;
  const SubmatrixStats s = ComputeStats(m, rows, cols);
  return Msr(m, s, rows, cols);
}

genbase::Result<std::vector<Bicluster>> ChengChurch(
    const linalg::MatrixView& data, const ChengChurchOptions& options,
    ExecContext* ctx) {
  if (data.rows < options.min_rows || data.cols < options.min_cols) {
    return Status::InvalidArgument("matrix smaller than minimum bicluster");
  }
  // Working copy: masking replaces found cells with noise.
  linalg::Matrix work(data.rows, data.cols);
  for (int64_t i = 0; i < data.rows; ++i) {
    std::copy(data.data + i * data.stride, data.data + i * data.stride +
              data.cols, work.Row(i));
  }
  double lo = work(0, 0), hi = work(0, 0);
  for (int64_t i = 0; i < work.size(); ++i) {
    lo = std::min(lo, work.data()[i]);
    hi = std::max(hi, work.data()[i]);
  }
  Rng mask_rng(options.mask_seed);
  std::vector<Bicluster> found;

  for (int b = 0; b < options.max_biclusters; ++b) {
    linalg::MatrixView wv(work);
    GENBASE_ASSIGN_OR_RETURN(
        Bicluster bc, options.impl == ChengChurchImpl::kIncremental
                          ? ExtractIncremental(wv, options, ctx)
                          : ExtractReference(wv, options, ctx));
    bc.mean_squared_residue = MeanSquaredResidue(wv, bc.rows, bc.cols);
    // Mask the found bicluster with uniform noise so the next pass finds a
    // different one (the Cheng & Church masking step).
    for (int64_t r : bc.rows) {
      for (int64_t c : bc.cols) {
        work(r, c) = mask_rng.Uniform(lo, hi);
      }
    }
    found.push_back(std::move(bc));
  }
  return found;
}

}  // namespace genbase::bicluster
