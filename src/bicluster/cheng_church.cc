#include "bicluster/cheng_church.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace genbase::bicluster {

namespace {

/// Row/column means and the overall mean of the selected submatrix.
struct SubmatrixStats {
  std::vector<double> row_mean;   // Indexed by position in `rows`.
  std::vector<double> col_mean;   // Indexed by position in `cols`.
  double mean = 0.0;
};

SubmatrixStats ComputeStats(const linalg::MatrixView& m,
                            const std::vector<int64_t>& rows,
                            const std::vector<int64_t>& cols) {
  SubmatrixStats s;
  s.row_mean.assign(rows.size(), 0.0);
  s.col_mean.assign(cols.size(), 0.0);
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    const double* row = m.data + rows[ri] * m.stride;
    double acc = 0.0;
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      const double v = row[cols[ci]];
      acc += v;
      s.col_mean[ci] += v;
    }
    s.row_mean[ri] = acc / static_cast<double>(cols.size());
    s.mean += acc;
  }
  const double cells =
      static_cast<double>(rows.size()) * static_cast<double>(cols.size());
  for (auto& c : s.col_mean) c /= static_cast<double>(rows.size());
  s.mean /= cells;
  return s;
}

double Residue(const linalg::MatrixView& m, const SubmatrixStats& s,
               const std::vector<int64_t>& rows,
               const std::vector<int64_t>& cols, size_t ri, size_t ci) {
  const double v = m(rows[ri], cols[ci]);
  const double r = v - s.row_mean[ri] - s.col_mean[ci] + s.mean;
  return r * r;
}

double Msr(const linalg::MatrixView& m, const SubmatrixStats& s,
           const std::vector<int64_t>& rows,
           const std::vector<int64_t>& cols) {
  double acc = 0.0;
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      acc += Residue(m, s, rows, cols, ri, ci);
    }
  }
  return acc / (static_cast<double>(rows.size()) *
                static_cast<double>(cols.size()));
}

/// Per-row mean squared residue d(i); analogous for columns.
std::vector<double> RowResidues(const linalg::MatrixView& m,
                                const SubmatrixStats& s,
                                const std::vector<int64_t>& rows,
                                const std::vector<int64_t>& cols) {
  std::vector<double> d(rows.size(), 0.0);
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    double acc = 0.0;
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      acc += Residue(m, s, rows, cols, ri, ci);
    }
    d[ri] = acc / static_cast<double>(cols.size());
  }
  return d;
}

std::vector<double> ColResidues(const linalg::MatrixView& m,
                                const SubmatrixStats& s,
                                const std::vector<int64_t>& rows,
                                const std::vector<int64_t>& cols) {
  std::vector<double> d(cols.size(), 0.0);
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    double acc = 0.0;
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      acc += Residue(m, s, rows, cols, ri, ci);
    }
    d[ci] = acc / static_cast<double>(rows.size());
  }
  return d;
}

template <typename T>
void RemoveIndices(std::vector<T>* v, const std::vector<size_t>& positions) {
  if (positions.empty()) return;
  std::vector<T> out;
  out.reserve(v->size() - positions.size());
  size_t pi = 0;
  for (size_t i = 0; i < v->size(); ++i) {
    if (pi < positions.size() && positions[pi] == i) {
      ++pi;
      continue;
    }
    out.push_back((*v)[i]);
  }
  *v = std::move(out);
}

}  // namespace

double MeanSquaredResidue(const linalg::MatrixView& m,
                          const std::vector<int64_t>& rows,
                          const std::vector<int64_t>& cols) {
  if (rows.empty() || cols.empty()) return 0.0;
  const SubmatrixStats s = ComputeStats(m, rows, cols);
  return Msr(m, s, rows, cols);
}

genbase::Result<std::vector<Bicluster>> ChengChurch(
    const linalg::MatrixView& data, const ChengChurchOptions& options,
    ExecContext* ctx) {
  if (data.rows < options.min_rows || data.cols < options.min_cols) {
    return Status::InvalidArgument("matrix smaller than minimum bicluster");
  }
  // Working copy: masking replaces found cells with noise.
  linalg::Matrix work(data.rows, data.cols);
  for (int64_t i = 0; i < data.rows; ++i) {
    std::copy(data.data + i * data.stride, data.data + i * data.stride +
              data.cols, work.Row(i));
  }
  double lo = work(0, 0), hi = work(0, 0);
  for (int64_t i = 0; i < work.size(); ++i) {
    lo = std::min(lo, work.data()[i]);
    hi = std::max(hi, work.data()[i]);
  }
  Rng mask_rng(options.mask_seed);
  std::vector<Bicluster> found;

  for (int b = 0; b < options.max_biclusters; ++b) {
    std::vector<int64_t> rows(static_cast<size_t>(data.rows));
    std::vector<int64_t> cols(static_cast<size_t>(data.cols));
    std::iota(rows.begin(), rows.end(), 0);
    std::iota(cols.begin(), cols.end(), 0);
    linalg::MatrixView wv(work);

    // Phase 1: multiple node deletion while the matrix is large.
    for (;;) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) return st;
      }
      if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
      SubmatrixStats s = ComputeStats(wv, rows, cols);
      const double h = Msr(wv, s, rows, cols);
      if (h <= options.delta) break;
      bool changed = false;
      if (static_cast<int64_t>(rows.size()) > 100) {
        const std::vector<double> d = RowResidues(wv, s, rows, cols);
        std::vector<size_t> to_remove;
        for (size_t i = 0; i < rows.size(); ++i) {
          if (d[i] > options.alpha * h &&
              static_cast<int64_t>(rows.size() - to_remove.size()) >
                  options.min_rows) {
            to_remove.push_back(i);
          }
        }
        if (!to_remove.empty()) {
          RemoveIndices(&rows, to_remove);
          changed = true;
          s = ComputeStats(wv, rows, cols);
        }
      }
      if (static_cast<int64_t>(cols.size()) > 100) {
        const double h2 = Msr(wv, s, rows, cols);
        const std::vector<double> d = ColResidues(wv, s, rows, cols);
        std::vector<size_t> to_remove;
        for (size_t i = 0; i < cols.size(); ++i) {
          if (d[i] > options.alpha * h2 &&
              static_cast<int64_t>(cols.size() - to_remove.size()) >
                  options.min_cols) {
            to_remove.push_back(i);
          }
        }
        if (!to_remove.empty()) {
          RemoveIndices(&cols, to_remove);
          changed = true;
        }
      }
      if (!changed) break;  // Fall through to single deletion.
    }

    // Phase 2: single node deletion until H <= delta.
    for (;;) {
      if (ctx != nullptr) {
        Status st = ctx->CheckBudgets();
        if (!st.ok()) return st;
      }
      if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
      const SubmatrixStats s = ComputeStats(wv, rows, cols);
      const double h = Msr(wv, s, rows, cols);
      if (h <= options.delta) break;
      const std::vector<double> dr = RowResidues(wv, s, rows, cols);
      const std::vector<double> dc = ColResidues(wv, s, rows, cols);
      const auto max_row = std::max_element(dr.begin(), dr.end());
      const auto max_col = std::max_element(dc.begin(), dc.end());
      const bool can_drop_row =
          static_cast<int64_t>(rows.size()) > options.min_rows;
      const bool can_drop_col =
          static_cast<int64_t>(cols.size()) > options.min_cols;
      if (!can_drop_row && !can_drop_col) break;
      const bool drop_row =
          can_drop_row && (!can_drop_col || *max_row >= *max_col);
      if (drop_row) {
        rows.erase(rows.begin() + (max_row - dr.begin()));
      } else {
        cols.erase(cols.begin() + (max_col - dc.begin()));
      }
    }

    // Phase 3: node addition — add back rows/columns that fit.
    {
      if (options.pass_hook) GENBASE_RETURN_NOT_OK(options.pass_hook());
      const SubmatrixStats s = ComputeStats(wv, rows, cols);
      const double h = Msr(wv, s, rows, cols);
      std::vector<bool> in_rows(static_cast<size_t>(data.rows), false);
      for (int64_t r : rows) in_rows[static_cast<size_t>(r)] = true;
      std::vector<bool> in_cols(static_cast<size_t>(data.cols), false);
      for (int64_t c : cols) in_cols[static_cast<size_t>(c)] = true;
      for (int64_t c = 0; c < data.cols; ++c) {
        if (in_cols[static_cast<size_t>(c)]) continue;
        double acc = 0.0;
        double cmean = 0.0;
        for (int64_t r : rows) cmean += wv(r, c);
        cmean /= static_cast<double>(rows.size());
        for (size_t ri = 0; ri < rows.size(); ++ri) {
          const double res =
              wv(rows[ri], c) - s.row_mean[ri] - cmean + s.mean;
          acc += res * res;
        }
        if (acc / static_cast<double>(rows.size()) <= h) {
          cols.push_back(c);
          in_cols[static_cast<size_t>(c)] = true;
        }
      }
      // Recompute stats with the enlarged column set before row addition.
      const SubmatrixStats s2 = ComputeStats(wv, rows, cols);
      const double h2 = Msr(wv, s2, rows, cols);
      for (int64_t r = 0; r < data.rows; ++r) {
        if (in_rows[static_cast<size_t>(r)]) continue;
        double rmean = 0.0;
        for (int64_t c : cols) rmean += wv(r, c);
        rmean /= static_cast<double>(cols.size());
        double acc = 0.0;
        for (size_t ci = 0; ci < cols.size(); ++ci) {
          const double res =
              wv(r, cols[ci]) - rmean - s2.col_mean[ci] + s2.mean;
          acc += res * res;
        }
        if (acc / static_cast<double>(cols.size()) <= h2) {
          rows.push_back(r);
          in_rows[static_cast<size_t>(r)] = true;
        }
      }
    }

    std::sort(rows.begin(), rows.end());
    std::sort(cols.begin(), cols.end());
    Bicluster bc;
    bc.rows = rows;
    bc.cols = cols;
    bc.mean_squared_residue = MeanSquaredResidue(wv, rows, cols);
    // Mask the found bicluster with uniform noise so the next pass finds a
    // different one (the Cheng & Church masking step).
    for (int64_t r : bc.rows) {
      for (int64_t c : bc.cols) {
        work(r, c) = mask_rng.Uniform(lo, hi);
      }
    }
    found.push_back(std::move(bc));
  }
  return found;
}

}  // namespace genbase::bicluster
