#ifndef GENBASE_BICLUSTER_SYNTHETIC_H_
#define GENBASE_BICLUSTER_SYNTHETIC_H_

#include <cstdint>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace genbase::bicluster {

/// \brief Uniform noise with a planted additive (row + col) block in the
/// top-left third — the canonical low-residue bicluster Cheng & Church must
/// find. Shared by the kernelbench residue gate and the property tests so
/// both measure the same deletion trajectory: retuning the block constants
/// in one place cannot silently change what the other checks.
inline linalg::Matrix PlantedBiclusterMatrix(int64_t rows, int64_t cols,
                                             uint64_t seed) {
  linalg::Matrix m(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = 4.0 * rng.Uniform(0.0, 1.0);
  }
  for (int64_t i = 0; i < rows / 3; ++i) {
    for (int64_t j = 0; j < cols / 3; ++j) {
      m(i, j) = 0.08 * static_cast<double>(i) +
                0.05 * static_cast<double>(j) + 0.02 * rng.Gaussian();
    }
  }
  return m;
}

}  // namespace genbase::bicluster

#endif  // GENBASE_BICLUSTER_SYNTHETIC_H_
