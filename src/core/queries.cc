#include "core/queries.h"

#include <algorithm>
#include <cmath>

#include "bicluster/cheng_church.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "stats/quantile.h"
#include "stats/wilcoxon.h"

namespace genbase::core {

const char* QueryName(QueryId q) {
  switch (q) {
    case QueryId::kRegression:
      return "regression";
    case QueryId::kCovariance:
      return "covariance";
    case QueryId::kBiclustering:
      return "biclustering";
    case QueryId::kSvd:
      return "svd";
    case QueryId::kStatistics:
      return "statistics";
  }
  return "?";
}

std::string QueryResult::ToString() const {
  char buf[256];
  switch (query) {
    case QueryId::kRegression:
      std::snprintf(buf, sizeof(buf),
                    "regression{rows=%lld predictors=%lld r2=%.4f}",
                    static_cast<long long>(regression.rows),
                    static_cast<long long>(regression.predictors),
                    regression.r_squared);
      break;
    case QueryId::kCovariance:
      std::snprintf(buf, sizeof(buf),
                    "covariance{samples=%lld genes=%lld pairs=%lld thr=%.4f}",
                    static_cast<long long>(covariance.samples),
                    static_cast<long long>(covariance.genes),
                    static_cast<long long>(covariance.pairs_above),
                    covariance.threshold);
      break;
    case QueryId::kBiclustering:
      std::snprintf(buf, sizeof(buf),
                    "bicluster{matrix=%lldx%lld found=%zu delta=%.4f}",
                    static_cast<long long>(bicluster.matrix_rows),
                    static_cast<long long>(bicluster.matrix_cols),
                    bicluster.biclusters.size(), bicluster.delta);
      break;
    case QueryId::kSvd:
      std::snprintf(buf, sizeof(buf),
                    "svd{%lldx%lld rank=%d sigma0=%.4f}",
                    static_cast<long long>(svd.rows),
                    static_cast<long long>(svd.cols), svd.rank,
                    svd.singular_values.empty() ? 0.0
                                                : svd.singular_values[0]);
      break;
    case QueryId::kStatistics:
      std::snprintf(buf, sizeof(buf),
                    "stats{terms=%lld significant=%lld zsum=%.4f}",
                    static_cast<long long>(stats.terms_tested),
                    static_cast<long long>(stats.significant_terms),
                    stats.z_abs_sum);
      break;
  }
  return buf;
}

genbase::Result<RegressionSummary> RegressionAnalytics(
    linalg::Matrix design_with_intercept, const std::vector<double>& y,
    ExecContext* ctx) {
  RegressionSummary s;
  s.rows = design_with_intercept.rows();
  s.predictors = design_with_intercept.cols() - 1;
  GENBASE_ASSIGN_OR_RETURN(
      linalg::LeastSquaresFit fit,
      linalg::LeastSquaresQr(std::move(design_with_intercept), y, ctx));
  s.r_squared = fit.r_squared;
  double l2 = 0.0;
  for (double c : fit.coefficients) l2 += c * c;
  s.coef_l2 = std::sqrt(l2);
  const size_t head = std::min<size_t>(8, fit.coefficients.size());
  s.coef_head.assign(fit.coefficients.begin(),
                     fit.coefficients.begin() + head);
  return s;
}

genbase::Result<RegressionSummary> RegressionAnalytics(
    const linalg::MatrixView& design_with_intercept,
    const std::vector<double>& y, ExecContext* ctx) {
  RegressionSummary s;
  s.rows = design_with_intercept.rows;
  s.predictors = design_with_intercept.cols - 1;
  GENBASE_ASSIGN_OR_RETURN(
      linalg::LeastSquaresFit fit,
      linalg::LeastSquaresQr(design_with_intercept, y, ctx));
  s.r_squared = fit.r_squared;
  double l2 = 0.0;
  for (double c : fit.coefficients) l2 += c * c;
  s.coef_l2 = std::sqrt(l2);
  const size_t head = std::min<size_t>(8, fit.coefficients.size());
  s.coef_head.assign(fit.coefficients.begin(),
                     fit.coefficients.begin() + head);
  return s;
}

genbase::Result<CovarianceSummary> CovarianceAnalytics(
    const linalg::MatrixView& x, const std::vector<int64_t>& gene_ids,
    const GeneMetaLookup& meta, double quantile,
    linalg::KernelQuality quality, ExecContext* ctx) {
  if (static_cast<int64_t>(gene_ids.size()) != x.cols) {
    return Status::InvalidArgument("gene id list must match matrix columns");
  }
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix cov,
                           linalg::CovarianceMatrix(x, quality, ctx));
  return CovarianceThresholdJoin(cov, x.rows, gene_ids, meta, quantile,
                                 ctx);
}

genbase::Result<CovarianceSummary> CovarianceThresholdJoin(
    const linalg::Matrix& cov, int64_t samples,
    const std::vector<int64_t>& gene_ids, const GeneMetaLookup& meta,
    double quantile, ExecContext* ctx) {
  // Upper-triangle values for the threshold quantile.
  const int64_t n = cov.rows();
  const int64_t num_pairs = n * (n - 1) / 2;
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(
      auto reservation,
      ScopedReservation::Acquire(tracker, num_pairs * 8));
  std::vector<double> upper(static_cast<size_t>(num_pairs));
  const linalg::MatrixView cov_view(cov);
  GENBASE_RETURN_NOT_OK(CovarianceExtractUpper(cov_view, upper.data(), ctx));
  GENBASE_ASSIGN_OR_RETURN(const double threshold,
                           stats::Quantile(upper, quantile));
  return CovarianceJoinPass(cov_view, samples, threshold, gene_ids, meta,
                            ctx);
}

genbase::Status CovarianceExtractUpper(const linalg::MatrixView& cov,
                                       double* upper, ExecContext* ctx) {
  const int64_t n = cov.rows;
  int64_t k = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (ctx != nullptr && (i & 255) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    for (int64_t j = i + 1; j < n; ++j) upper[k++] = cov(i, j);
  }
  return Status::OK();
}

genbase::Result<CovarianceSummary> CovarianceJoinPass(
    const linalg::MatrixView& cov, int64_t samples, double threshold,
    const std::vector<int64_t>& gene_ids, const GeneMetaLookup& meta,
    ExecContext* ctx) {
  CovarianceSummary s;
  s.samples = samples;
  s.genes = cov.rows;
  s.threshold = threshold;
  // Threshold pass + metadata join for qualifying pairs.
  const int64_t n = cov.rows;
  for (int64_t i = 0; i < n; ++i) {
    if (ctx != nullptr && (i & 255) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    for (int64_t j = i + 1; j < n; ++j) {
      const double c = cov(i, j);
      if (c <= s.threshold) continue;
      ++s.pairs_above;
      s.cov_checksum += c;
      int64_t func_i = 0, len_i = 0, func_j = 0, len_j = 0;
      GENBASE_RETURN_NOT_OK(meta(gene_ids[i], &func_i, &len_i));
      GENBASE_RETURN_NOT_OK(meta(gene_ids[j], &func_j, &len_j));
      s.meta_checksum += static_cast<double>(func_i + func_j) +
                         1e-3 * static_cast<double>(len_i + len_j);
    }
  }
  return s;
}

genbase::Result<BiclusterSummary> BiclusterAnalytics(
    const linalg::MatrixView& x, double delta_fraction, int count,
    ExecContext* ctx, std::function<genbase::Status()> pass_hook) {
  BiclusterSummary s;
  s.matrix_rows = x.rows;
  s.matrix_cols = x.cols;
  // Index temporaries charged to the run's tracker so per-op
  // alloc_delta_bytes stays exact even for Q3's setup vectors.
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(
      auto index_reservation,
      ScopedReservation::Acquire(
          tracker, (x.rows + x.cols) * static_cast<int64_t>(sizeof(int64_t))));
  std::vector<int64_t> all_rows(static_cast<size_t>(x.rows));
  std::vector<int64_t> all_cols(static_cast<size_t>(x.cols));
  for (int64_t i = 0; i < x.rows; ++i) all_rows[i] = i;
  for (int64_t j = 0; j < x.cols; ++j) all_cols[j] = j;
  const double full_msr =
      bicluster::MeanSquaredResidue(x, all_rows, all_cols);
  s.delta = delta_fraction * full_msr;

  bicluster::ChengChurchOptions opt;
  opt.delta = s.delta;
  opt.max_biclusters = count;
  opt.min_rows = 4;
  opt.min_cols = 4;
  opt.pass_hook = std::move(pass_hook);
  GENBASE_ASSIGN_OR_RETURN(std::vector<bicluster::Bicluster> found,
                           bicluster::ChengChurch(x, opt, ctx));
  for (const auto& b : found) {
    s.biclusters.push_back({static_cast<int64_t>(b.rows.size()),
                            static_cast<int64_t>(b.cols.size()),
                            b.mean_squared_residue});
  }
  return s;
}

genbase::Result<SvdSummary> SvdAnalytics(const linalg::MatrixView& x,
                                         int rank,
                                         linalg::KernelQuality quality,
                                         ExecContext* ctx) {
  SvdSummary s;
  s.rows = x.rows;
  s.cols = x.cols;
  s.rank = std::min<int64_t>(rank, x.cols);
  linalg::SvdOptions opt;
  opt.rank = s.rank;
  opt.quality = quality;
  GENBASE_ASSIGN_OR_RETURN(linalg::SvdResult svd,
                           linalg::TruncatedSvd(x, opt, ctx));
  s.iterations = svd.lanczos_iterations;
  s.singular_values = std::move(svd.singular_values);
  return s;
}

genbase::Result<StatsSummary> StatsAnalytics(
    const std::vector<double>& gene_scores,
    const std::vector<std::vector<int64_t>>& memberships,
    double significance, ExecContext* ctx) {
  return StatsAnalytics(gene_scores.data(),
                        static_cast<int64_t>(gene_scores.size()), memberships,
                        significance, ctx);
}

genbase::Result<StatsSummary> StatsAnalytics(
    const double* gene_scores, int64_t count,
    const std::vector<std::vector<int64_t>>& memberships,
    double significance, ExecContext* ctx) {
  StatsSummary s;
  s.genes_ranked = count;
  // The group mask is reused across terms; charge its packed-bit footprint
  // so per-op alloc_delta_bytes stays exact.
  MemoryTracker* tracker = ctx != nullptr ? ctx->memory() : nullptr;
  GENBASE_ASSIGN_OR_RETURN(auto mask_reservation,
                           ScopedReservation::Acquire(tracker, (count + 7) / 8));
  std::vector<bool> mask(static_cast<size_t>(count), false);
  for (const auto& members : memberships) {
    if (ctx != nullptr) GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    if (members.empty() ||
        static_cast<int64_t>(members.size()) == count) {
      continue;  // Test undefined when a group is empty.
    }
    std::fill(mask.begin(), mask.end(), false);
    for (int64_t g : members) mask[static_cast<size_t>(g)] = true;
    GENBASE_ASSIGN_OR_RETURN(
        stats::RankSumResult r,
        stats::WilcoxonRankSum(gene_scores, count, mask));
    ++s.terms_tested;
    if (r.p_two_sided < significance) ++s.significant_terms;
    s.z_abs_sum += std::fabs(r.z);
  }
  return s;
}

}  // namespace genbase::core
