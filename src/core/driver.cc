#include "core/driver.h"

#include <cstdio>

#include "common/timer.h"

namespace genbase::core {

std::string CellResult::Display() const {
  if (!supported) return "n/a";
  if (infinite) return "INF";
  if (!status.ok()) return "ERR";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", total_s);
  return buf;
}

CellResult RunCell(Engine* engine, QueryId query, DatasetSize size,
                   const DriverOptions& options) {
  ExecContext ctx;
  return RunCellWithContext(engine, query, size, options, &ctx);
}

CellResult RunCellWithContext(Engine* engine, QueryId query, DatasetSize size,
                              const DriverOptions& options, ExecContext* ctx) {
  CellResult cell;
  cell.engine = engine->name();
  cell.query = query;
  cell.size = size;
  if (!engine->SupportsQuery(query)) {
    cell.supported = false;
    cell.status = genbase::Status::NotSupported(
        cell.engine + " does not implement " + QueryName(query));
    return cell;
  }
  ctx->ResetForRun();
  engine->PrepareContext(ctx);
  ctx->SetDeadlineAfter(options.timeout_seconds);

  auto result = engine->RunQuery(query, options.params, ctx);
  cell.dm_s = ctx->clock().total(Phase::kDataManagement) +
              ctx->clock().total(Phase::kGlue);
  cell.analytics_s = ctx->clock().total(Phase::kAnalytics);
  cell.glue_s = ctx->clock().total(Phase::kGlue);
  cell.total_s = ctx->clock().grand_total();
  cell.modeled_s = ctx->clock().modeled(Phase::kDataManagement) +
                   ctx->clock().modeled(Phase::kAnalytics) +
                   ctx->clock().modeled(Phase::kGlue);
  if (result.ok()) {
    cell.result = std::move(result).ValueOrDie();
    cell.status = genbase::Status::OK();
    // A cell whose modeled+measured total exceeds the budget is INF too:
    // virtual time (network, transfer) counts against the paper's 2h wall.
    if (cell.total_s > options.timeout_seconds) {
      cell.infinite = true;
      cell.status = genbase::Status::DeadlineExceeded(
          "modeled total exceeds time budget");
    }
  } else {
    cell.status = result.status();
    cell.infinite = cell.status.IsResourceFailure();
  }
  return cell;
}

}  // namespace genbase::core
