#ifndef GENBASE_CORE_DRIVER_H_
#define GENBASE_CORE_DRIVER_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace genbase::core {

/// \brief One cell of a benchmark grid: (engine, query, size) -> times.
struct CellResult {
  std::string engine;
  QueryId query = QueryId::kRegression;
  DatasetSize size = DatasetSize::kSmall;
  int nodes = 1;

  bool supported = true;
  bool infinite = false;      ///< Timeout or memory failure (paper's INF bars).
  genbase::Status status;     ///< Failure detail when infinite/error.

  double total_s = 0.0;
  double dm_s = 0.0;          ///< Data management (includes glue).
  double analytics_s = 0.0;
  double glue_s = 0.0;        ///< Copy/reformat between systems, broken out.
  double modeled_s = 0.0;     ///< Virtual (simulated) share of total_s.

  QueryResult result;         ///< Valid when status.ok().

  /// Figure-style cell text ("12.34" or "INF" or "n/a").
  std::string Display() const;
};

struct DriverOptions {
  double timeout_seconds = 20.0;
  QueryParams params;
};

/// \brief Runs one query on an engine that already has a dataset loaded.
/// Applies the timeout, installs the engine's budgets, collects phase times,
/// and converts resource failures into the INF marker.
CellResult RunCell(Engine* engine, QueryId query, DatasetSize size,
                   const DriverOptions& options);

/// \brief The timed single-operation core behind RunCell, reusing a
/// caller-owned ExecContext (reset on entry). Thread-safe with respect to
/// the engine: many threads may call it concurrently on one loaded Engine as
/// long as each passes its own context — engines only read loaded state
/// during RunQuery and their memory trackers are atomic. This is the entry
/// point the concurrent workload runner (src/workload) drives.
CellResult RunCellWithContext(Engine* engine, QueryId query, DatasetSize size,
                              const DriverOptions& options, ExecContext* ctx);

}  // namespace genbase::core

#endif  // GENBASE_CORE_DRIVER_H_
