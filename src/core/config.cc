#include "core/config.h"

#include <cstdlib>

namespace genbase::core {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

}  // namespace

const SimConfig& SimConfig::Get() {
  static const SimConfig config = [] {
    SimConfig c;
    c.scale = EnvDouble("GENBASE_SCALE", c.scale);
    c.timeout_seconds = EnvDouble("GENBASE_TIMEOUT", c.timeout_seconds);
    return c;
  }();
  return config;
}

}  // namespace genbase::core
