#ifndef GENBASE_CORE_VERIFY_H_
#define GENBASE_CORE_VERIFY_H_

#include "common/status.h"
#include "core/queries.h"

namespace genbase::core {

/// \brief Tolerant comparison of two query results (expected vs actual).
///
/// Engines compute with different summation orders / kernel variants, so
/// floating-point results match only to a tolerance. Counts must match
/// exactly except where they derive from a floating threshold (Q2's pair
/// count), which gets a tiny relative slack.
genbase::Status CompareQueryResults(const QueryResult& expected,
                                    const QueryResult& actual,
                                    double rel_tol = 1e-6);

}  // namespace genbase::core

#endif  // GENBASE_CORE_VERIFY_H_
