#ifndef GENBASE_CORE_DATASETS_H_
#define GENBASE_CORE_DATASETS_H_

#include <cstdint>
#include <string>

#include "storage/column_store.h"
#include "storage/types.h"

namespace genbase::core {

/// \brief The four dataset sizes of the paper (Section 3.1.1). Dimensions
/// are genes x patients; the benchmark applies a linear scale factor.
enum class DatasetSize { kSmall, kMedium, kLarge, kXLarge };

const char* DatasetSizeName(DatasetSize s);

/// \brief Scaled dimensions of one benchmark instance.
struct DatasetDims {
  int64_t genes = 0;
  int64_t patients = 0;
  int64_t go_terms = 0;
  int64_t diseases = 21;        ///< Paper: "our data set contains 21 diseases".
  int64_t functions = 500;      ///< Function codes 0..499; queries cut at 250.
  int64_t go_terms_per_gene = 4;

  /// Dense microarray cell count.
  int64_t cells() const { return genes * patients; }
  /// Bytes of the dense expression matrix.
  int64_t dense_bytes() const { return cells() * 8; }
};

/// Paper dims (small 5k x 5k ... xl 60k x 70k) scaled linearly by `scale`.
/// GO terms scale as genes / 10.
DatasetDims DimsFor(DatasetSize size, double scale);

/// \brief Column schemas of the four benchmark tables (Section 3.1).
storage::Schema MicroarraySchema();      // gene_id, patient_id, expr
storage::Schema PatientMetaSchema();     // patient_id, age, gender, zipcode,
                                         // disease_id, drug_response
storage::Schema GeneMetaSchema();        // gene_id, target, position, length,
                                         // function
storage::Schema GeneOntologySchema();    // gene_id, go_id, belongs

/// Column indexes, kept in one place so engines cannot drift.
struct MicroarrayCols {
  static constexpr int kGeneId = 0;
  static constexpr int kPatientId = 1;
  static constexpr int kExpr = 2;
};
struct PatientCols {
  static constexpr int kPatientId = 0;
  static constexpr int kAge = 1;
  static constexpr int kGender = 2;
  static constexpr int kZipcode = 3;
  static constexpr int kDiseaseId = 4;
  static constexpr int kDrugResponse = 5;
};
struct GeneCols {
  static constexpr int kGeneId = 0;
  static constexpr int kTarget = 1;
  static constexpr int kPosition = 2;
  static constexpr int kLength = 3;
  static constexpr int kFunction = 4;
};
struct GoCols {
  static constexpr int kGeneId = 0;
  static constexpr int kGoId = 1;
  static constexpr int kBelongs = 2;
};

/// \brief One generated benchmark instance in neutral (columnar) form.
/// Engines ingest this into their native storage at load time; load cost is
/// not part of query time (the paper pre-loads data too).
struct GenBaseData {
  DatasetDims dims;
  DatasetSize size = DatasetSize::kSmall;
  storage::ColumnTable microarray{MicroarraySchema()};
  storage::ColumnTable patients{PatientMetaSchema()};
  storage::ColumnTable genes{GeneMetaSchema()};
  storage::ColumnTable ontology{GeneOntologySchema()};  ///< belongs=1 rows.
};

}  // namespace genbase::core

#endif  // GENBASE_CORE_DATASETS_H_
