#include "core/datasets.h"

#include <algorithm>
#include <cmath>

namespace genbase::core {

const char* DatasetSizeName(DatasetSize s) {
  switch (s) {
    case DatasetSize::kSmall:
      return "small";
    case DatasetSize::kMedium:
      return "medium";
    case DatasetSize::kLarge:
      return "large";
    case DatasetSize::kXLarge:
      return "xlarge";
  }
  return "?";
}

DatasetDims DimsFor(DatasetSize size, double scale) {
  int64_t genes0 = 0, patients0 = 0;
  switch (size) {
    case DatasetSize::kSmall:
      genes0 = 5000;
      patients0 = 5000;
      break;
    case DatasetSize::kMedium:
      genes0 = 15000;
      patients0 = 20000;
      break;
    case DatasetSize::kLarge:
      genes0 = 30000;
      patients0 = 40000;
      break;
    case DatasetSize::kXLarge:
      genes0 = 60000;
      patients0 = 70000;
      break;
  }
  DatasetDims d;
  d.genes = std::max<int64_t>(
      20, static_cast<int64_t>(std::llround(genes0 * scale)));
  d.patients = std::max<int64_t>(
      20, static_cast<int64_t>(std::llround(patients0 * scale)));
  d.go_terms = std::max<int64_t>(5, d.genes / 10);
  return d;
}

storage::Schema MicroarraySchema() {
  using storage::DataType;
  return storage::Schema({{"gene_id", DataType::kInt64},
                          {"patient_id", DataType::kInt64},
                          {"expr", DataType::kDouble}});
}

storage::Schema PatientMetaSchema() {
  using storage::DataType;
  return storage::Schema({{"patient_id", DataType::kInt64},
                          {"age", DataType::kInt64},
                          {"gender", DataType::kInt64},
                          {"zipcode", DataType::kInt64},
                          {"disease_id", DataType::kInt64},
                          {"drug_response", DataType::kDouble}});
}

storage::Schema GeneMetaSchema() {
  using storage::DataType;
  return storage::Schema({{"gene_id", DataType::kInt64},
                          {"target", DataType::kInt64},
                          {"position", DataType::kInt64},
                          {"length", DataType::kInt64},
                          {"function", DataType::kInt64}});
}

storage::Schema GeneOntologySchema() {
  using storage::DataType;
  return storage::Schema({{"gene_id", DataType::kInt64},
                          {"go_id", DataType::kInt64},
                          {"belongs", DataType::kInt64}});
}

}  // namespace genbase::core
