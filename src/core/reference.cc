#include "core/reference.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "relational/restructure.h"

namespace genbase::core {

namespace {

using relational::DenseMapping;
using relational::MakeDenseMapping;
using relational::TriplesToMatrix;

/// Dense expression matrix for (patient ids x gene ids) straight from the
/// neutral triples.
genbase::Result<linalg::Matrix> BuildExpression(
    const GenBaseData& data, const std::vector<int64_t>& patient_ids,
    const std::vector<int64_t>& gene_ids, ExecContext* ctx) {
  const DenseMapping rows = MakeDenseMapping(patient_ids);
  const DenseMapping cols = MakeDenseMapping(gene_ids);
  const auto& ma = data.microarray;
  return TriplesToMatrix(
      ma.IntColumn(MicroarrayCols::kPatientId).data(),
      ma.IntColumn(MicroarrayCols::kGeneId).data(),
      ma.DoubleColumn(MicroarrayCols::kExpr).data(), ma.num_rows(), rows,
      cols, ctx, ctx != nullptr ? ctx->memory() : nullptr);
}

GeneMetaLookup MakeMetaLookup(const GenBaseData& data) {
  const auto& genes = data.genes;
  // gene_id == row index by construction, but engines must not rely on
  // that; the reference builds an honest hash index once.
  auto index = std::make_shared<std::unordered_map<int64_t, int64_t>>();
  const auto& ids = genes.IntColumn(GeneCols::kGeneId);
  index->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    index->emplace(ids[i], static_cast<int64_t>(i));
  }
  const auto* func = &genes.IntColumn(GeneCols::kFunction);
  const auto* len = &genes.IntColumn(GeneCols::kLength);
  return [index, func, len](int64_t gene_id, int64_t* function,
                            int64_t* length) -> genbase::Status {
    const auto it = index->find(gene_id);
    if (it == index->end()) {
      return genbase::Status::NotFound("gene id " +
                                       std::to_string(gene_id));
    }
    *function = (*func)[static_cast<size_t>(it->second)];
    *length = (*len)[static_cast<size_t>(it->second)];
    return genbase::Status::OK();
  };
}

genbase::Result<QueryResult> ReferenceRegression(const GenBaseData& data,
                                                 const QueryParams& params,
                                                 ExecContext* ctx) {
  QueryResult out;
  out.query = QueryId::kRegression;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  const std::vector<int64_t> gene_ids =
      SelectGenesByFunction(data, params.function_threshold);
  std::vector<int64_t> patient_ids(
      static_cast<size_t>(data.dims.patients));
  for (int64_t p = 0; p < data.dims.patients; ++p) patient_ids[p] = p;
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix x,
                           BuildExpression(data, patient_ids, gene_ids, ctx));
  // Design matrix: intercept column then expressions.
  GENBASE_ASSIGN_OR_RETURN(
      linalg::Matrix design,
      linalg::Matrix::Create(x.rows(), x.cols() + 1,
                             ctx != nullptr ? ctx->memory() : nullptr));
  for (int64_t i = 0; i < x.rows(); ++i) {
    design(i, 0) = 1.0;
    std::copy(x.Row(i), x.Row(i) + x.cols(), design.Row(i) + 1);
  }
  const auto& y_col =
      data.patients.DoubleColumn(PatientCols::kDrugResponse);
  std::vector<double> y(y_col.begin(), y_col.end());
  {
    ScopedPhase an(ctx, Phase::kAnalytics);
    GENBASE_ASSIGN_OR_RETURN(out.regression,
                             RegressionAnalytics(std::move(design), y, ctx));
  }
  return out;
}

genbase::Result<QueryResult> ReferenceCovariance(const GenBaseData& data,
                                                 const QueryParams& params,
                                                 ExecContext* ctx) {
  QueryResult out;
  out.query = QueryId::kCovariance;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  const std::vector<int64_t> patient_ids =
      SelectPatientsByDisease(data, params.disease_id);
  std::vector<int64_t> gene_ids(static_cast<size_t>(data.dims.genes));
  for (int64_t g = 0; g < data.dims.genes; ++g) gene_ids[g] = g;
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix x,
                           BuildExpression(data, patient_ids, gene_ids, ctx));
  {
    ScopedPhase an(ctx, Phase::kAnalytics);
    GENBASE_ASSIGN_OR_RETURN(
        out.covariance,
        CovarianceAnalytics(linalg::MatrixView(x), gene_ids,
                            MakeMetaLookup(data),
                            params.covariance_quantile,
                            linalg::KernelQuality::kTuned, ctx));
  }
  return out;
}

genbase::Result<QueryResult> ReferenceBicluster(const GenBaseData& data,
                                                const QueryParams& params,
                                                ExecContext* ctx) {
  QueryResult out;
  out.query = QueryId::kBiclustering;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  const std::vector<int64_t> patient_ids =
      SelectPatientsByAgeGender(data, params.gender, params.max_age);
  std::vector<int64_t> gene_ids(static_cast<size_t>(data.dims.genes));
  for (int64_t g = 0; g < data.dims.genes; ++g) gene_ids[g] = g;
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix x,
                           BuildExpression(data, patient_ids, gene_ids, ctx));
  {
    ScopedPhase an(ctx, Phase::kAnalytics);
    GENBASE_ASSIGN_OR_RETURN(
        out.bicluster,
        BiclusterAnalytics(linalg::MatrixView(x),
                           params.bicluster_delta_fraction,
                           params.bicluster_count, ctx));
  }
  return out;
}

genbase::Result<QueryResult> ReferenceSvd(const GenBaseData& data,
                                          const QueryParams& params,
                                          ExecContext* ctx) {
  QueryResult out;
  out.query = QueryId::kSvd;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  const std::vector<int64_t> gene_ids =
      SelectGenesByFunction(data, params.function_threshold);
  std::vector<int64_t> patient_ids(
      static_cast<size_t>(data.dims.patients));
  for (int64_t p = 0; p < data.dims.patients; ++p) patient_ids[p] = p;
  GENBASE_ASSIGN_OR_RETURN(linalg::Matrix x,
                           BuildExpression(data, patient_ids, gene_ids, ctx));
  {
    ScopedPhase an(ctx, Phase::kAnalytics);
    GENBASE_ASSIGN_OR_RETURN(
        out.svd, SvdAnalytics(linalg::MatrixView(x), params.svd_rank,
                              linalg::KernelQuality::kTuned, ctx));
  }
  return out;
}

genbase::Result<QueryResult> ReferenceStatistics(const GenBaseData& data,
                                                 const QueryParams& params,
                                                 ExecContext* ctx) {
  QueryResult out;
  out.query = QueryId::kStatistics;
  ScopedPhase dm(ctx, Phase::kDataManagement);
  const std::vector<int64_t> sample =
      SelectSamplePatients(data, params.sample_fraction);
  std::unordered_set<int64_t> in_sample(sample.begin(), sample.end());
  // Mean expression per gene over the sampled patients.
  std::vector<double> score(static_cast<size_t>(data.dims.genes), 0.0);
  const auto& ma = data.microarray;
  const auto& pid = ma.IntColumn(MicroarrayCols::kPatientId);
  const auto& gid = ma.IntColumn(MicroarrayCols::kGeneId);
  const auto& expr = ma.DoubleColumn(MicroarrayCols::kExpr);
  for (size_t i = 0; i < pid.size(); ++i) {
    if (ctx != nullptr && (i & 262143) == 0) {
      GENBASE_RETURN_NOT_OK(ctx->CheckBudgets());
    }
    if (in_sample.count(pid[i]) == 0) continue;
    score[static_cast<size_t>(gid[i])] += expr[i];
  }
  const double inv = 1.0 / static_cast<double>(sample.size());
  for (auto& s : score) s *= inv;
  // GO memberships: term -> gene indices.
  std::vector<std::vector<int64_t>> memberships(
      static_cast<size_t>(data.dims.go_terms));
  const auto& go_gene = data.ontology.IntColumn(GoCols::kGeneId);
  const auto& go_term = data.ontology.IntColumn(GoCols::kGoId);
  const auto& go_belongs = data.ontology.IntColumn(GoCols::kBelongs);
  for (size_t i = 0; i < go_gene.size(); ++i) {
    if (go_belongs[i] == 0) continue;
    memberships[static_cast<size_t>(go_term[i])].push_back(go_gene[i]);
  }
  // Deduplicate memberships (a gene may be listed once per term only).
  for (auto& m : memberships) {
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
  }
  {
    ScopedPhase an(ctx, Phase::kAnalytics);
    GENBASE_ASSIGN_OR_RETURN(
        out.stats,
        StatsAnalytics(score, memberships, params.significance, ctx));
    out.stats.samples = static_cast<int64_t>(sample.size());
  }
  return out;
}

}  // namespace

std::vector<int64_t> SelectGenesByFunction(const GenBaseData& data,
                                           int64_t function_threshold) {
  std::vector<int64_t> ids;
  const auto& gene_id = data.genes.IntColumn(GeneCols::kGeneId);
  const auto& function = data.genes.IntColumn(GeneCols::kFunction);
  for (size_t i = 0; i < gene_id.size(); ++i) {
    if (function[i] < function_threshold) ids.push_back(gene_id[i]);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int64_t> SelectPatientsByDisease(const GenBaseData& data,
                                             int64_t disease_id) {
  std::vector<int64_t> ids;
  const auto& pid = data.patients.IntColumn(PatientCols::kPatientId);
  const auto& disease = data.patients.IntColumn(PatientCols::kDiseaseId);
  for (size_t i = 0; i < pid.size(); ++i) {
    if (disease[i] == disease_id) ids.push_back(pid[i]);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int64_t> SelectPatientsByAgeGender(const GenBaseData& data,
                                               int64_t gender,
                                               int64_t max_age) {
  std::vector<int64_t> ids;
  const auto& pid = data.patients.IntColumn(PatientCols::kPatientId);
  const auto& age = data.patients.IntColumn(PatientCols::kAge);
  const auto& g = data.patients.IntColumn(PatientCols::kGender);
  for (size_t i = 0; i < pid.size(); ++i) {
    if (g[i] == gender && age[i] < max_age) ids.push_back(pid[i]);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t SampleCount(int64_t num_patients, double fraction) {
  return std::max<int64_t>(
      2, static_cast<int64_t>(std::ceil(num_patients * fraction)));
}

std::vector<int64_t> SelectSamplePatients(const GenBaseData& data,
                                          double fraction) {
  const int64_t k = SampleCount(data.dims.patients, fraction);
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(k));
  for (int64_t p = 0; p < k; ++p) ids.push_back(p);
  return ids;
}

genbase::Result<QueryResult> RunReferenceQuery(QueryId query,
                                               const GenBaseData& data,
                                               const QueryParams& params,
                                               ExecContext* ctx) {
  switch (query) {
    case QueryId::kRegression:
      return ReferenceRegression(data, params, ctx);
    case QueryId::kCovariance:
      return ReferenceCovariance(data, params, ctx);
    case QueryId::kBiclustering:
      return ReferenceBicluster(data, params, ctx);
    case QueryId::kSvd:
      return ReferenceSvd(data, params, ctx);
    case QueryId::kStatistics:
      return ReferenceStatistics(data, params, ctx);
  }
  return Status::InvalidArgument("unknown query");
}

}  // namespace genbase::core
