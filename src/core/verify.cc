#include "core/verify.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace genbase::core {

namespace {

genbase::Status FailMismatch(const char* what, double expected,
                             double actual) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s mismatch: expected %.10g, actual %.10g",
                what, expected, actual);
  return genbase::Status::Internal(buf);
}

genbase::Status CheckClose(const char* what, double expected, double actual,
                           double rel_tol) {
  const double scale =
      std::max({1.0, std::fabs(expected), std::fabs(actual)});
  if (std::fabs(expected - actual) > rel_tol * scale) {
    return FailMismatch(what, expected, actual);
  }
  return genbase::Status::OK();
}

genbase::Status CheckExact(const char* what, int64_t expected,
                           int64_t actual) {
  if (expected != actual) {
    return FailMismatch(what, static_cast<double>(expected),
                        static_cast<double>(actual));
  }
  return genbase::Status::OK();
}

}  // namespace

genbase::Status CompareQueryResults(const QueryResult& expected,
                                    const QueryResult& actual,
                                    double rel_tol) {
  if (expected.query != actual.query) {
    return genbase::Status::Internal("query kind mismatch");
  }
  switch (expected.query) {
    case QueryId::kRegression: {
      const auto& e = expected.regression;
      const auto& a = actual.regression;
      GENBASE_RETURN_NOT_OK(CheckExact("rows", e.rows, a.rows));
      GENBASE_RETURN_NOT_OK(
          CheckExact("predictors", e.predictors, a.predictors));
      GENBASE_RETURN_NOT_OK(
          CheckClose("r_squared", e.r_squared, a.r_squared, rel_tol));
      GENBASE_RETURN_NOT_OK(
          CheckClose("coef_l2", e.coef_l2, a.coef_l2, rel_tol));
      if (e.coef_head.size() != a.coef_head.size()) {
        return genbase::Status::Internal("coef_head length mismatch");
      }
      for (size_t i = 0; i < e.coef_head.size(); ++i) {
        GENBASE_RETURN_NOT_OK(CheckClose("coef_head", e.coef_head[i],
                                         a.coef_head[i], rel_tol * 10));
      }
      return genbase::Status::OK();
    }
    case QueryId::kCovariance: {
      const auto& e = expected.covariance;
      const auto& a = actual.covariance;
      GENBASE_RETURN_NOT_OK(CheckExact("samples", e.samples, a.samples));
      GENBASE_RETURN_NOT_OK(CheckExact("genes", e.genes, a.genes));
      GENBASE_RETURN_NOT_OK(
          CheckClose("threshold", e.threshold, a.threshold, rel_tol));
      // The pair count derives from a floating threshold; allow a sliver.
      const double slack =
          std::max(2.0, 1e-5 * static_cast<double>(e.pairs_above));
      if (std::fabs(static_cast<double>(e.pairs_above - a.pairs_above)) >
          slack) {
        return FailMismatch("pairs_above",
                            static_cast<double>(e.pairs_above),
                            static_cast<double>(a.pairs_above));
      }
      GENBASE_RETURN_NOT_OK(CheckClose("cov_checksum", e.cov_checksum,
                                       a.cov_checksum, rel_tol * 100));
      GENBASE_RETURN_NOT_OK(CheckClose("meta_checksum", e.meta_checksum,
                                       a.meta_checksum, rel_tol * 100));
      return genbase::Status::OK();
    }
    case QueryId::kBiclustering: {
      const auto& e = expected.bicluster;
      const auto& a = actual.bicluster;
      GENBASE_RETURN_NOT_OK(
          CheckExact("matrix_rows", e.matrix_rows, a.matrix_rows));
      GENBASE_RETURN_NOT_OK(
          CheckExact("matrix_cols", e.matrix_cols, a.matrix_cols));
      GENBASE_RETURN_NOT_OK(CheckClose("delta", e.delta, a.delta, rel_tol));
      GENBASE_RETURN_NOT_OK(
          CheckExact("bicluster count",
                     static_cast<int64_t>(e.biclusters.size()),
                     static_cast<int64_t>(a.biclusters.size())));
      for (size_t i = 0; i < e.biclusters.size(); ++i) {
        GENBASE_RETURN_NOT_OK(CheckExact("bicluster rows",
                                         e.biclusters[i].rows,
                                         a.biclusters[i].rows));
        GENBASE_RETURN_NOT_OK(CheckExact("bicluster cols",
                                         e.biclusters[i].cols,
                                         a.biclusters[i].cols));
        GENBASE_RETURN_NOT_OK(CheckClose("bicluster msr",
                                         e.biclusters[i].msr,
                                         a.biclusters[i].msr, rel_tol * 10));
      }
      return genbase::Status::OK();
    }
    case QueryId::kSvd: {
      const auto& e = expected.svd;
      const auto& a = actual.svd;
      GENBASE_RETURN_NOT_OK(CheckExact("rows", e.rows, a.rows));
      GENBASE_RETURN_NOT_OK(CheckExact("cols", e.cols, a.cols));
      GENBASE_RETURN_NOT_OK(CheckExact("rank", e.rank, a.rank));
      if (e.singular_values.size() != a.singular_values.size()) {
        return genbase::Status::Internal("singular value count mismatch");
      }
      // Lanczos from different starting vectors agrees on well-separated
      // leading singular values; compare with a modest tolerance relative
      // to sigma_0.
      const double scale =
          e.singular_values.empty() ? 1.0 : e.singular_values[0];
      for (size_t i = 0; i < e.singular_values.size(); ++i) {
        if (std::fabs(e.singular_values[i] - a.singular_values[i]) >
            std::max(rel_tol * 100, 1e-6) * scale) {
          return FailMismatch("singular value", e.singular_values[i],
                              a.singular_values[i]);
        }
      }
      return genbase::Status::OK();
    }
    case QueryId::kStatistics: {
      const auto& e = expected.stats;
      const auto& a = actual.stats;
      GENBASE_RETURN_NOT_OK(CheckExact("samples", e.samples, a.samples));
      GENBASE_RETURN_NOT_OK(
          CheckExact("genes_ranked", e.genes_ranked, a.genes_ranked));
      GENBASE_RETURN_NOT_OK(
          CheckExact("terms_tested", e.terms_tested, a.terms_tested));
      GENBASE_RETURN_NOT_OK(CheckExact("significant_terms",
                                       e.significant_terms,
                                       a.significant_terms));
      GENBASE_RETURN_NOT_OK(
          CheckClose("z_abs_sum", e.z_abs_sum, a.z_abs_sum, rel_tol * 10));
      return genbase::Status::OK();
    }
  }
  return genbase::Status::Internal("unknown query kind");
}

}  // namespace genbase::core
