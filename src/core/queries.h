#ifndef GENBASE_CORE_QUERIES_H_
#define GENBASE_CORE_QUERIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "linalg/covariance.h"
#include "linalg/matrix.h"

namespace genbase::core {

/// \brief The five benchmark queries (paper Section 3.2).
enum class QueryId {
  kRegression = 1,   ///< Q1: predictive modeling (QR least squares).
  kCovariance = 2,   ///< Q2: all-pairs gene covariance + threshold join.
  kBiclustering = 3, ///< Q3: Cheng-Church biclustering.
  kSvd = 4,          ///< Q4: Lanczos SVD, top 50.
  kStatistics = 5,   ///< Q5: Wilcoxon rank-sum enrichment over GO terms.
};

const char* QueryName(QueryId q);
inline constexpr QueryId kAllQueries[] = {
    QueryId::kRegression, QueryId::kCovariance, QueryId::kBiclustering,
    QueryId::kSvd, QueryId::kStatistics};

/// \brief Workflow parameters, defaulted to the paper's examples.
struct QueryParams {
  /// Q1/Q4: "select genes with a particular set of functions (function <
  /// 250)". Function codes span [0, 500).
  int64_t function_threshold = 250;
  /// Q2: "select patients with some disease".
  int64_t disease_id = 7;
  /// Q2: "covariance greater than a threshold (e.g. top 10%)".
  double covariance_quantile = 0.90;
  /// Q3: "male patients less than 40 years old".
  int64_t max_age = 40;
  int64_t gender = 1;
  /// Q3: delta is set relative to the full matrix's mean squared residue
  /// (delta = fraction * H(full)); all engines derive it identically.
  double bicluster_delta_fraction = 0.35;
  int bicluster_count = 3;
  /// Q4: "find the 50 largest eigenvalues".
  int svd_rank = 50;
  /// Q5: "select a subset of samples (e.g. 0.25% of patients)".
  double sample_fraction = 0.0025;
  double significance = 0.01;
};

/// --- per-query result summaries --------------------------------------------
/// Engines return compact, comparable summaries. Where a full result would be
/// huge (Q2's qualifying pair list), the summary carries counts plus
/// checksums that cannot be produced without doing the work (including the
/// metadata join).

struct RegressionSummary {
  int64_t rows = 0;
  int64_t predictors = 0;          ///< Excluding intercept.
  double r_squared = 0.0;
  double coef_l2 = 0.0;            ///< L2 norm of all coefficients.
  std::vector<double> coef_head;   ///< First 8 coefficients (w/ intercept).
};

struct CovarianceSummary {
  int64_t samples = 0;
  int64_t genes = 0;
  int64_t pairs_above = 0;   ///< Pairs (i < j) with cov > threshold.
  double threshold = 0.0;
  double cov_checksum = 0.0;   ///< Sum of qualifying covariances.
  double meta_checksum = 0.0;  ///< Sum over qualifying pairs of joined
                               ///< gene-metadata fields (forces the join).
};

struct BiclusterSummary {
  struct Entry {
    int64_t rows = 0;
    int64_t cols = 0;
    double msr = 0.0;
  };
  int64_t matrix_rows = 0;
  int64_t matrix_cols = 0;
  double delta = 0.0;
  std::vector<Entry> biclusters;
};

struct SvdSummary {
  int64_t rows = 0;
  int64_t cols = 0;
  int rank = 0;
  int iterations = 0;  ///< Lanczos iterations used (not compared by verify;
                       ///< cost models for per-iteration-job systems use it).
  std::vector<double> singular_values;  ///< Descending, length == rank.
};

struct StatsSummary {
  int64_t samples = 0;
  int64_t genes_ranked = 0;
  int64_t terms_tested = 0;
  int64_t significant_terms = 0;  ///< p < significance.
  double z_abs_sum = 0.0;
};

struct QueryResult {
  QueryId query = QueryId::kRegression;
  RegressionSummary regression;
  CovarianceSummary covariance;
  BiclusterSummary bicluster;
  SvdSummary svd;
  StatsSummary stats;

  std::string ToString() const;
};

/// --- shared analytics building blocks ---------------------------------------
/// Engines produce inputs through their own storage/DM paths, then call these
/// for the math, parameterized by kernel quality and the context's thread
/// budget. Keeping the arithmetic shared is how all seven engines compute
/// identical answers while paying very different architectural costs — the
/// paper's own systems all called the same LAPACK-family routines.

/// Q1 analytics: least squares of y on [1 | X].
genbase::Result<RegressionSummary> RegressionAnalytics(
    linalg::Matrix design_with_intercept, const std::vector<double>& y,
    ExecContext* ctx);

/// View overload for a design matrix living in externally planned storage
/// (the static-plan arena). Identical arithmetic to the consuming overload,
/// so summaries are bitwise identical.
genbase::Result<RegressionSummary> RegressionAnalytics(
    const linalg::MatrixView& design_with_intercept,
    const std::vector<double>& y, ExecContext* ctx);

/// Lookup used by Q2's metadata join: gene id -> (function, length).
using GeneMetaLookup =
    std::function<genbase::Status(int64_t gene_id, int64_t* function,
                                  int64_t* length)>;

/// Q2 analytics: covariance of columns of x, quantile threshold, and the
/// qualifying-pair join against gene metadata.
genbase::Result<CovarianceSummary> CovarianceAnalytics(
    const linalg::MatrixView& x, const std::vector<int64_t>& gene_ids,
    const GeneMetaLookup& meta, double quantile,
    linalg::KernelQuality quality, ExecContext* ctx);

/// Q2's post-covariance step alone: quantile threshold over the upper
/// triangle, then the qualifying-pair metadata join. Shared by the
/// single-node path and the distributed path (which computes the covariance
/// matrix with a different kernel).
genbase::Result<CovarianceSummary> CovarianceThresholdJoin(
    const linalg::Matrix& cov, int64_t samples,
    const std::vector<int64_t>& gene_ids, const GeneMetaLookup& meta,
    double quantile, ExecContext* ctx);

/// Q2's upper-triangle extraction alone: writes cov's strict upper triangle
/// row-major into `upper` (n*(n-1)/2 doubles, caller-provided). One of the
/// CovarianceThresholdJoin building blocks; the static-plan path schedules
/// it as its own operator with `upper` in the arena.
genbase::Status CovarianceExtractUpper(const linalg::MatrixView& cov,
                                       double* upper, ExecContext* ctx);

/// Q2's qualifying-pair metadata join alone, against a precomputed
/// threshold. Fills the full summary (samples/genes/threshold come from the
/// arguments). The other CovarianceThresholdJoin building block.
genbase::Result<CovarianceSummary> CovarianceJoinPass(
    const linalg::MatrixView& cov, int64_t samples, double threshold,
    const std::vector<int64_t>& gene_ids, const GeneMetaLookup& meta,
    ExecContext* ctx);

/// Q3 analytics: Cheng-Church with delta = fraction * MSR(full matrix).
/// `pass_hook` (optional) is invoked once per algorithm pass; engines whose
/// analytics interface has per-invocation overhead charge it there.
genbase::Result<BiclusterSummary> BiclusterAnalytics(
    const linalg::MatrixView& x, double delta_fraction, int count,
    ExecContext* ctx,
    std::function<genbase::Status()> pass_hook = nullptr);

/// Q4 analytics: truncated SVD, rank = min(rank, cols).
genbase::Result<SvdSummary> SvdAnalytics(const linalg::MatrixView& x,
                                         int rank,
                                         linalg::KernelQuality quality,
                                         ExecContext* ctx);

/// Q5 analytics: Wilcoxon rank-sum per GO term over per-gene scores.
/// memberships[t] lists gene indices (0..genes-1) belonging to term t.
genbase::Result<StatsSummary> StatsAnalytics(
    const std::vector<double>& gene_scores,
    const std::vector<std::vector<int64_t>>& memberships,
    double significance, ExecContext* ctx);

/// Span overload for scores living in externally planned storage (the
/// static-plan arena); the vector overload forwards here.
genbase::Result<StatsSummary> StatsAnalytics(
    const double* gene_scores, int64_t count,
    const std::vector<std::vector<int64_t>>& memberships,
    double significance, ExecContext* ctx);

}  // namespace genbase::core

#endif  // GENBASE_CORE_QUERIES_H_
