#ifndef GENBASE_CORE_ENGINE_H_
#define GENBASE_CORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/queries.h"

namespace genbase::core {

/// \brief A system configuration under benchmark: one of the paper's seven
/// single-node setups, a multi-node setup, or a coprocessor-assisted setup.
///
/// Contract:
///  * LoadDataset ingests the neutral columnar data into native storage.
///    Load time is not query time (the paper pre-loads too), but load memory
///    is charged against the engine's budget.
///  * RunQuery executes one benchmark query, accounting phase times into
///    ctx->clock() (kDataManagement / kAnalytics / kGlue).
///  * Engines must produce answers equal to the reference implementation
///    within numerical tolerance (enforced by tests): systems in the paper
///    differ in *how long* they take, never in *what* they compute.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Whether this configuration implements the query at all. Mirrors the
  /// paper: "some plots do not show results for systems in which the
  /// required functionality is missing."
  virtual bool SupportsQuery(QueryId query) const {
    (void)query;
    return true;
  }

  /// Loads `data`, advancing the dataset epoch first. Non-virtual on
  /// purpose: the epoch bump is the serving tier's cache-invalidation
  /// signal, and routing every load through here means no engine can forget
  /// it. A failed load still advances the epoch — the previous dataset was
  /// already torn down, so cached results keyed under the old epoch must not
  /// be served either way.
  genbase::Status LoadDataset(const GenBaseData& data) {
    dataset_epoch_.fetch_add(1, std::memory_order_acq_rel);
    return DoLoadDataset(data);
  }

  void UnloadDataset() {
    dataset_epoch_.fetch_add(1, std::memory_order_acq_rel);
    DoUnloadDataset();
  }

  /// Monotone change counter of the loaded dataset: 0 before the first
  /// load, advanced by every LoadDataset/UnloadDataset (including failed
  /// loads — the old data is gone either way). An unchanged epoch across a
  /// query run proves the engine's data was not swapped underneath it; the
  /// serving tier's ShardRouter uses exactly that as its swap-under-op
  /// tripwire, and builds its fleet-wide cache generations (successful
  /// loads only) on top of this signal.
  uint64_t dataset_epoch() const {
    return dataset_epoch_.load(std::memory_order_acquire);
  }

  /// Installs the engine's memory budget / thread pool into the context.
  virtual void PrepareContext(ExecContext* ctx) = 0;

  virtual genbase::Result<QueryResult> RunQuery(QueryId query,
                                                const QueryParams& params,
                                                ExecContext* ctx) = 0;

 protected:
  /// Engine-specific ingest/teardown behind the epoch-bumping public pair.
  virtual genbase::Status DoLoadDataset(const GenBaseData& data) = 0;
  virtual void DoUnloadDataset() = 0;

 private:
  std::atomic<uint64_t> dataset_epoch_{0};
};

}  // namespace genbase::core

#endif  // GENBASE_CORE_ENGINE_H_
