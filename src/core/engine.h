#ifndef GENBASE_CORE_ENGINE_H_
#define GENBASE_CORE_ENGINE_H_

#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/queries.h"

namespace genbase::core {

/// \brief A system configuration under benchmark: one of the paper's seven
/// single-node setups, a multi-node setup, or a coprocessor-assisted setup.
///
/// Contract:
///  * LoadDataset ingests the neutral columnar data into native storage.
///    Load time is not query time (the paper pre-loads too), but load memory
///    is charged against the engine's budget.
///  * RunQuery executes one benchmark query, accounting phase times into
///    ctx->clock() (kDataManagement / kAnalytics / kGlue).
///  * Engines must produce answers equal to the reference implementation
///    within numerical tolerance (enforced by tests): systems in the paper
///    differ in *how long* they take, never in *what* they compute.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Whether this configuration implements the query at all. Mirrors the
  /// paper: "some plots do not show results for systems in which the
  /// required functionality is missing."
  virtual bool SupportsQuery(QueryId query) const {
    (void)query;
    return true;
  }

  virtual genbase::Status LoadDataset(const GenBaseData& data) = 0;
  virtual void UnloadDataset() = 0;

  /// Installs the engine's memory budget / thread pool into the context.
  virtual void PrepareContext(ExecContext* ctx) = 0;

  virtual genbase::Result<QueryResult> RunQuery(QueryId query,
                                                const QueryParams& params,
                                                ExecContext* ctx) = 0;
};

}  // namespace genbase::core

#endif  // GENBASE_CORE_ENGINE_H_
