#ifndef GENBASE_CORE_CONFIG_H_
#define GENBASE_CORE_CONFIG_H_

#include <cstdint>

namespace genbase::core {

/// \brief All tunables of the reproduction in one place.
///
/// Two kinds of numbers live here:
///  1. *Workload* knobs (scale, timeout) — set from the environment:
///       GENBASE_SCALE    linear scale factor on paper dataset dims
///                        (default 0.1; 1.0 = the paper's literal sizes)
///       GENBASE_TIMEOUT  per-query-cell time budget in seconds
///                        (default 20; the paper used 7200)
///  2. *Model* constants — the few costs that are simulated rather than
///     incurred, because the hardware does not exist in this environment
///     (cluster interconnect, coprocessor, JVM startup). Every such constant
///     is documented here and surfaced in bench output; DESIGN.md explains
///     each substitution.
struct SimConfig {
  // --- workload ------------------------------------------------------------
  double scale = 0.08;
  double timeout_seconds = 40.0;

  // --- single-node system models -------------------------------------------
  /// R's hard limit of 2^31 - 1 cells per array (R 3.0.x, paper Section 4.1).
  int64_t r_max_cells = (1LL << 31) - 1;
  /// R working-set multiplier: value semantics mean merge/model-matrix steps
  /// hold several transient copies. Used only for the memory *budget* model;
  /// the copies themselves are made for real by the R engine.
  double r_memory_budget_vs_medium = 12.0;
  /// Virtual per-UDF-invocation overhead of the column store's in-database R
  /// interface (interpreter entry, argument marshalling). The paper observed
  /// this interface misbehaving on iterative algorithms (biclustering).
  double udf_invocation_overhead_s = 0.004;
  /// Virtual per-statement overhead of the interpreted SQL/plpython path
  /// that Madlib uses for operations it lacks native C++ kernels for.
  /// Calibrated so the Madlib SVD exceeds the scaled time window on the
  /// large dataset, as in the paper ("only two [tasks] within the 2 hour
  /// window").
  double interpreted_cell_overhead_s = 30e-9;  // Per simulated VM cell-op.

  // --- Hadoop model ---------------------------------------------------------
  /// Virtual per-MapReduce-job startup latency (JVM spinup + scheduling).
  double mr_job_startup_s = 2.0;
  /// Number of map tasks per job (controls spill granularity).
  int mr_tasks_per_job = 4;

  // --- cluster model (Figures 3/4) -------------------------------------------
  /// Gigabit-Ethernet-class interconnect.
  double net_bandwidth_bytes_per_s = 125e6;
  double net_latency_s = 200e-6;
  /// Per-node intra-node thread budget for multi-node engines.
  int node_threads = 1;

  // --- coprocessor model (Figure 5, Table 1) --------------------------------
  /// Device:host throughput ratio for GEMM-bound kernels (Xeon Phi 5110P vs
  /// Xeon E5-2620: ~1 TF vs ~0.2 TF peak DP, derated for offload realities).
  double phi_gemm_speedup = 3.2;
  /// Device:host ratio for bandwidth-bound kernels (320 GB/s vs ~85 GB/s,
  /// derated).
  double phi_bandwidth_speedup = 1.6;
  /// PCIe 2.0 x16 effective transfer bandwidth.
  double phi_transfer_bytes_per_s = 6e9;
  /// Per-offload fixed launch latency.
  double phi_launch_latency_s = 0.01;
  /// On-board memory (8 GB on the 5110P); larger working sets stay on host.
  int64_t phi_memory_bytes = 8LL << 30;

  /// Loaded once from the environment.
  static const SimConfig& Get();
};

}  // namespace genbase::core

#endif  // GENBASE_CORE_CONFIG_H_
