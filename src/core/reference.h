#ifndef GENBASE_CORE_REFERENCE_H_
#define GENBASE_CORE_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/datasets.h"
#include "core/queries.h"

namespace genbase::core {

/// \brief Engine-agnostic ground-truth execution of a benchmark query,
/// straight over the neutral columnar data with tuned kernels. Every engine
/// must agree with this within numerical tolerance; the integration tests
/// enforce it.
genbase::Result<QueryResult> RunReferenceQuery(QueryId query,
                                               const GenBaseData& data,
                                               const QueryParams& params,
                                               ExecContext* ctx = nullptr);

/// --- selection predicates shared by reference and engines -------------------
/// (The *predicates* are part of the benchmark spec; each engine evaluates
/// them through its own operators.)

/// Q1/Q4: gene ids with function < threshold, ascending.
std::vector<int64_t> SelectGenesByFunction(const GenBaseData& data,
                                           int64_t function_threshold);

/// Q2: patient ids with the given disease, ascending.
std::vector<int64_t> SelectPatientsByDisease(const GenBaseData& data,
                                             int64_t disease_id);

/// Q3: patient ids with gender == g and age < max_age, ascending.
std::vector<int64_t> SelectPatientsByAgeGender(const GenBaseData& data,
                                               int64_t gender,
                                               int64_t max_age);

/// Q5: the deterministic sample "0.25% of patients": ids < ceil(frac * P),
/// at least 2.
std::vector<int64_t> SelectSamplePatients(const GenBaseData& data,
                                          double fraction);

/// Number of sampled patients for a given fraction (shared rule).
int64_t SampleCount(int64_t num_patients, double fraction);

}  // namespace genbase::core

#endif  // GENBASE_CORE_REFERENCE_H_
