#include "core/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace genbase::core {

namespace {

/// Deterministic per-purpose RNG streams.
Rng StreamFor(const GeneratorOptions& opt, DatasetSize size,
              const char* purpose) {
  return Rng(SeedFromTag(purpose, opt.seed, static_cast<uint64_t>(size)));
}

}  // namespace

genbase::Result<GenBaseData> GenerateDataset(DatasetSize size, double scale,
                                             const GeneratorOptions& opt) {
  GenBaseData data;
  data.size = size;
  data.dims = DimsFor(size, scale);
  const DatasetDims& dims = data.dims;
  const int64_t g_count = dims.genes;
  const int64_t p_count = dims.patients;
  const int f = opt.latent_factors;

  // --- latent factor model for expression ---------------------------------
  Rng factor_rng = StreamFor(opt, size, "factors");
  std::vector<double> loading(static_cast<size_t>(p_count * f));
  for (auto& x : loading) x = factor_rng.Gaussian(0.0, 1.0);
  std::vector<double> weight(static_cast<size_t>(g_count * f));
  for (auto& x : weight) x = factor_rng.Gaussian(0.0, 0.8);
  // Decaying factor strengths give a clean singular-value ladder.
  std::vector<double> strength(static_cast<size_t>(f));
  for (int i = 0; i < f; ++i) {
    strength[static_cast<size_t>(i)] = 2.0 * std::pow(0.8, i);
  }

  // Planted bicluster support sets (prefix blocks of ids; the generator
  // shuffles ids into effect via hashing below, so prefixes are arbitrary).
  const int64_t planted_rows = std::max<int64_t>(
      2, static_cast<int64_t>(p_count * opt.planted_row_fraction));
  const int64_t planted_cols = std::max<int64_t>(
      2, static_cast<int64_t>(g_count * opt.planted_col_fraction));

  // --- gene metadata --------------------------------------------------------
  Rng gene_rng = StreamFor(opt, size, "genes");
  {
    auto& t = data.genes;
    GENBASE_RETURN_NOT_OK(t.Reserve(g_count));
    auto& gene_id = t.MutableIntColumn(GeneCols::kGeneId);
    auto& target = t.MutableIntColumn(GeneCols::kTarget);
    auto& position = t.MutableIntColumn(GeneCols::kPosition);
    auto& length = t.MutableIntColumn(GeneCols::kLength);
    auto& function = t.MutableIntColumn(GeneCols::kFunction);
    for (int64_t g = 0; g < g_count; ++g) {
      gene_id.push_back(g);
      target.push_back(gene_rng.UniformInt(0, g_count - 1));
      position.push_back(gene_rng.UniformInt(0, 3'000'000));
      length.push_back(gene_rng.UniformInt(200, 20'000));
      function.push_back(gene_rng.UniformInt(0, dims.functions - 1));
    }
    GENBASE_RETURN_NOT_OK(t.FinishBulkLoad());
  }

  // --- patient metadata ------------------------------------------------------
  // Drug response depends on a causal subset of gene expressions (computed
  // after the expression pass); placeholder filled below.
  Rng patient_rng = StreamFor(opt, size, "patients");
  {
    auto& t = data.patients;
    GENBASE_RETURN_NOT_OK(t.Reserve(p_count));
    auto& pid = t.MutableIntColumn(PatientCols::kPatientId);
    auto& age = t.MutableIntColumn(PatientCols::kAge);
    auto& gender = t.MutableIntColumn(PatientCols::kGender);
    auto& zip = t.MutableIntColumn(PatientCols::kZipcode);
    auto& disease = t.MutableIntColumn(PatientCols::kDiseaseId);
    auto& response = t.MutableDoubleColumn(PatientCols::kDrugResponse);
    for (int64_t p = 0; p < p_count; ++p) {
      pid.push_back(p);
      age.push_back(patient_rng.UniformInt(0, 99));
      gender.push_back(patient_rng.UniformInt(0, 1));
      zip.push_back(patient_rng.UniformInt(10'000, 99'999));
      disease.push_back(patient_rng.UniformInt(1, dims.diseases));
      response.push_back(0.0);  // Filled from causal genes below.
    }
    GENBASE_RETURN_NOT_OK(t.FinishBulkLoad());
  }

  // --- microarray (relational triples, patient-major) ------------------------
  Rng noise_rng = StreamFor(opt, size, "noise");
  const int causal = std::min<int64_t>(opt.causal_genes, g_count);
  std::vector<double> causal_coef(static_cast<size_t>(causal));
  Rng causal_rng = StreamFor(opt, size, "causal");
  for (auto& c : causal_coef) c = causal_rng.Uniform(-1.5, 1.5);
  std::vector<double> response_acc(static_cast<size_t>(p_count), 0.0);

  {
    auto& t = data.microarray;
    GENBASE_RETURN_NOT_OK(t.Reserve(dims.cells()));
    auto& gene_id = t.MutableIntColumn(MicroarrayCols::kGeneId);
    auto& patient_id = t.MutableIntColumn(MicroarrayCols::kPatientId);
    auto& expr = t.MutableDoubleColumn(MicroarrayCols::kExpr);
    gene_id.resize(static_cast<size_t>(dims.cells()));
    patient_id.resize(static_cast<size_t>(dims.cells()));
    expr.resize(static_cast<size_t>(dims.cells()));
    int64_t idx = 0;
    for (int64_t p = 0; p < p_count; ++p) {
      const double* lrow = loading.data() + p * f;
      const bool p_in_plant = p < planted_rows;
      for (int64_t g = 0; g < g_count; ++g, ++idx) {
        const double* wrow = weight.data() + g * f;
        double v = 0.0;
        for (int i = 0; i < f; ++i) {
          v += strength[static_cast<size_t>(i)] * lrow[i] * wrow[i];
        }
        v += noise_rng.Gaussian(0.0, opt.noise_sigma);
        if (p_in_plant && g < planted_cols) {
          // Additive row+column pattern: exactly the structure a low mean
          // squared residue bicluster rewards.
          v += opt.planted_amplitude +
               0.3 * static_cast<double>(p % 7) +
               0.2 * static_cast<double>(g % 5);
        }
        gene_id[static_cast<size_t>(idx)] = g;
        patient_id[static_cast<size_t>(idx)] = p;
        expr[static_cast<size_t>(idx)] = v;
        if (g < causal) {
          response_acc[static_cast<size_t>(p)] +=
              causal_coef[static_cast<size_t>(g)] * v;
        }
      }
    }
    GENBASE_RETURN_NOT_OK(t.FinishBulkLoad());
  }

  // Fill drug response now that causal expressions exist.
  {
    Rng resp_rng = StreamFor(opt, size, "response");
    auto& response =
        data.patients.MutableDoubleColumn(PatientCols::kDrugResponse);
    for (int64_t p = 0; p < p_count; ++p) {
      response[static_cast<size_t>(p)] =
          1.7 + response_acc[static_cast<size_t>(p)] +
          resp_rng.Gaussian(0.0, opt.response_noise_sigma);
    }
  }

  // --- gene ontology ---------------------------------------------------------
  // Each gene belongs to a few GO terms; membership is biased by the gene's
  // dominant latent factor so GO terms correlate with expression (Query 5's
  // enrichment has signal).
  Rng go_rng = StreamFor(opt, size, "ontology");
  {
    auto& t = data.ontology;
    GENBASE_RETURN_NOT_OK(
        t.Reserve(g_count * dims.go_terms_per_gene));
    auto& gene_id = t.MutableIntColumn(GoCols::kGeneId);
    auto& go_id = t.MutableIntColumn(GoCols::kGoId);
    auto& belongs = t.MutableIntColumn(GoCols::kBelongs);
    for (int64_t g = 0; g < g_count; ++g) {
      // Dominant factor of this gene.
      const double* wrow = weight.data() + g * f;
      int dom = 0;
      double best = -1.0;
      for (int i = 0; i < f; ++i) {
        const double a = std::fabs(wrow[i] * strength[static_cast<size_t>(i)]);
        if (a > best) {
          best = a;
          dom = i;
        }
      }
      // First membership: a factor-aligned GO term; rest: uniform.
      const int64_t aligned =
          (dom * dims.go_terms / f + go_rng.UniformInt(0, 1)) %
          dims.go_terms;
      int64_t prev = -1;
      for (int64_t k = 0; k < dims.go_terms_per_gene; ++k) {
        int64_t term = k == 0 ? aligned
                              : go_rng.UniformInt(0, dims.go_terms - 1);
        if (term == prev) term = (term + 1) % dims.go_terms;
        gene_id.push_back(g);
        go_id.push_back(term);
        belongs.push_back(1);
        prev = term;
      }
    }
    GENBASE_RETURN_NOT_OK(t.FinishBulkLoad());
  }

  return data;
}

genbase::Result<GenBaseData> GenerateDataset(DatasetSize size, double scale) {
  return GenerateDataset(size, scale, GeneratorOptions());
}

}  // namespace genbase::core
