#ifndef GENBASE_CORE_GENERATOR_H_
#define GENBASE_CORE_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "core/datasets.h"

namespace genbase::core {

/// \brief Options for the synthetic data generator. The paper's data is
/// synthetic too ("to protect privacy ... we use synthetically generated
/// data ... modeled on existing microarray and patient data").
struct GeneratorOptions {
  uint64_t seed = 2013;  ///< Year of the tech report; any value works.

  /// Latent-factor rank of the expression model. Expression is
  ///   expr(p, g) = sum_f loading(p, f) * weight(g, f) + noise,
  /// which gives the data a real low-rank signal for SVD/covariance and
  /// correlated gene groups for biclustering to find.
  int latent_factors = 10;
  double noise_sigma = 0.6;

  /// A planted bicluster (rows x cols fraction of the matrix) with a shared
  /// additive pattern, so Query 3 has ground truth to recover.
  double planted_row_fraction = 0.08;
  double planted_col_fraction = 0.06;
  double planted_amplitude = 2.5;

  /// Number of causal genes whose expression drives drug response, so the
  /// Query 1 regression has real structure (R^2 well above 0).
  int causal_genes = 12;
  double response_noise_sigma = 0.5;
};

/// \brief Deterministically generates one benchmark instance. Identical
/// (size, scale, options) always produce bit-identical data, independent of
/// platform (custom PRNG, no std::distribution).
genbase::Result<GenBaseData> GenerateDataset(DatasetSize size, double scale,
                                             const GeneratorOptions& options);

genbase::Result<GenBaseData> GenerateDataset(DatasetSize size, double scale);

}  // namespace genbase::core

#endif  // GENBASE_CORE_GENERATOR_H_
