#ifndef GENBASE_OBS_TRACE_H_
#define GENBASE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace genbase::obs {

/// \brief The stages a served request passes through, in path order. Used
/// both as span names and as indices into StageSeconds / per-stage
/// histograms, so the trace view and the aggregate view always agree on
/// what a "stage" is.
enum class RequestStage {
  kQueue = 0,     ///< Admission queue wait (miss path only).
  kCache,         ///< Result-cache lookup.
  kFlight,        ///< Single-flight wait behind another request's miss.
  kDispatch,      ///< Shard acquire + modeled network/glue time.
  kExecute,       ///< Engine execution on the shard.
  kVerify,        ///< Result verification against shared truth.
  kNumRequestStages,
};

inline constexpr int kNumRequestStages =
    static_cast<int>(RequestStage::kNumRequestStages);

const char* RequestStageName(RequestStage stage);

/// \brief Seconds spent in each stage of one request. The stack fills this
/// for every request (sampled or not — six doubles), so per-stage
/// histograms stay exact while traces stay sampled. Invariants kept by the
/// serving stack: queue + flight == queue_delay, cache + dispatch +
/// execute == cell.total_s; verify is added by the runner.
///
/// When the resource profiler is enabled (see obs/profiler.h), `cpu` holds
/// the thread-CPU seconds (CLOCK_THREAD_CPUTIME_ID) spent inside each
/// stage's wall window, clamped per stage to cpu <= wall. Blocking stages
/// (queue, flight) burn near-zero CPU while their wall time grows under
/// overload; modeled network time in dispatch contributes no CPU at all.
/// All zeros when profiling is off.
struct StageSeconds {
  double s[kNumRequestStages] = {0, 0, 0, 0, 0, 0};
  double cpu[kNumRequestStages] = {0, 0, 0, 0, 0, 0};

  double& operator[](RequestStage stage) { return s[static_cast<int>(stage)]; }
  double operator[](RequestStage stage) const {
    return s[static_cast<int>(stage)];
  }
  double& Cpu(RequestStage stage) { return cpu[static_cast<int>(stage)]; }
  double Cpu(RequestStage stage) const {
    return cpu[static_cast<int>(stage)];
  }
  double Sum() const {
    double t = 0;
    for (double v : s) t += v;
    return t;
  }
  double CpuSum() const {
    double t = 0;
    for (double v : cpu) t += v;
    return t;
  }
};

/// \brief One completed span. POD so it can live in the lock-free rings:
/// `name` must point at a string with static storage duration (stage names,
/// literals), free-form context goes into the inline `detail` buffer.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 for the root span.
  const char* name = "";
  double start_s = 0.0;  ///< Seconds since the tracer's process anchor.
  double dur_s = 0.0;
  uint32_t tid = 0;       ///< Small per-thread ordinal, not the OS tid.
  bool synthetic = false; ///< Tail-kept span rebuilt from StageSeconds.
  char detail[40] = {0};

  void SetDetail(std::string_view d) {
    const size_t n = d.size() < sizeof(detail) - 1 ? d.size()
                                                   : sizeof(detail) - 1;
    // A default string_view has a null data(); memcpy forbids null even
    // with a zero count.
    if (n > 0) std::memcpy(detail, d.data(), n);
    detail[n] = '\0';
  }
};

/// \brief One line of the JSONL slow-query log: every tail-kept request
/// (shed / stale tripwire / deadline miss / verify failure / slowest-N)
/// gets one, whether or not it was head-sampled.
struct SlowQueryRecord {
  uint64_t trace_id = 0;
  std::string workload;
  std::string query;
  int variant = 0;
  int class_id = 0;
  double start_s = 0.0;    ///< Tracer-anchor seconds of arrival.
  double latency_s = 0.0;  ///< Coordinated-omission-corrected end-to-end.
  StageSeconds stages;
  /// MemoryTracker reservation activity during the request window (bytes,
  /// monotone reserved-total delta); -1 when unknown / profiling disabled.
  int64_t alloc_delta_bytes = -1;
  bool shed = false;
  bool stale_tripwire = false;
  bool deadline_missed = false;
  bool verify_failed = false;
  int retries = 0;       ///< Extra execute attempts (fault-tolerance path).
  bool hedged = false;   ///< A duplicate (hedged) attempt was issued.
  bool slowest = false;  ///< Kept because it was in the slowest-N set.
};

/// Deterministic trace id for the `index`-th scheduled op of a workload:
/// a pure function of (seed, workload name, index) so reruns — and the
/// sampling decisions derived from the id — are reproducible.
uint64_t RequestTraceId(uint64_t seed, std::string_view workload,
                        uint64_t index);

/// Head-sampling decision: hashes the trace id into [0,1) and compares
/// against `rate`. Pure, so every thread agrees without coordination.
bool TraceSampled(uint64_t trace_id, double rate);

/// \brief Process-global trace collector. Writers append completed spans to
/// lock-free thread-local SPSC rings (acquired from a reuse pool, so
/// short-lived workload threads don't grow memory without bound); the
/// collector drains rings on Collect(). A full ring drops the span and
/// bumps `trace_spans_dropped_total` — the hot path never blocks.
class Tracer {
 public:
  static Tracer& Global();

  /// Sampling rate in [0,1]. Initialized from GENBASE_TRACE_SAMPLE
  /// (default 0.01); benches override it around overhead-gate runs.
  double sample_rate() const {
    return sample_rate_.load(std::memory_order_relaxed);
  }
  void set_sample_rate(double rate);

  /// Monotonic seconds since the tracer singleton was created — the time
  /// base of every Span::start_s.
  double NowSeconds() const;

  /// Appends one completed span to the calling thread's ring. Lock-free;
  /// drops (and counts) instead of blocking when the ring is full.
  void Record(const Span& span);

  /// Drains every thread ring into the internal collected buffer. Called
  /// from one collector thread at a time (the workload runner, between
  /// runs). Returns the number of spans drained.
  size_t Collect();

  /// Collect() then move out everything gathered so far.
  std::vector<Span> TakeCollected();

  void LogSlowQuery(SlowQueryRecord record);
  std::vector<SlowQueryRecord> TakeSlowQueries();

  int64_t spans_recorded() const { return spans_recorded_->Value(); }
  int64_t spans_dropped() const { return spans_dropped_->Value(); }

  /// Small ordinal for the calling thread, stable for the thread lifetime;
  /// used as Span::tid so Chrome trace rows stay compact.
  static uint32_t ThreadOrdinal();

  /// Spans per thread ring. Power of two; at 1% sampling a ring holds
  /// thousands of requests' spans between collects.
  static constexpr size_t kRingCapacity = 2048;

 private:
  struct Ring {
    std::atomic<uint64_t> head{0};  ///< Writer-owned, release on publish.
    std::atomic<uint64_t> tail{0};  ///< Collector-owned.
    std::atomic<bool> in_use{false};
    std::vector<Span> slots{std::vector<Span>(kRingCapacity)};
  };

  Tracer();
  Ring* AcquireRing();
  void DrainRing(Ring* ring);

  std::atomic<double> sample_rate_{0.01};
  std::chrono::steady_clock::time_point anchor_;

  std::mutex rings_mu_;            ///< Guards the ring list, not ring data.
  std::deque<std::unique_ptr<Ring>> rings_;

  std::mutex collect_mu_;
  std::vector<Span> collected_;
  std::vector<SlowQueryRecord> slow_queries_;

  Counter* spans_recorded_;
  Counter* spans_dropped_;

  friend struct TracerTls;
};

/// \brief Installs {trace id, sampling decision} for the current thread for
/// the lifetime of one request; restores the previous context on exit, so
/// traces nest correctly if a request is served from within another.
/// Span creation below this point needs no plumbing — ScopedSpan reads the
/// thread-local context.
class ScopedTrace {
 public:
  ScopedTrace(uint64_t trace_id, bool sampled);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  uint64_t saved_trace_id_;
  uint64_t saved_parent_;
  uint64_t saved_next_span_id_;
  bool saved_sampled_;
};

/// \brief RAII span: opens on construction, records on destruction.
/// A single branch (and nothing else) when the current trace is unsampled.
/// Nesting: the youngest live ScopedSpan on this thread is the parent of
/// any span opened under it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  uint64_t span_id() const { return span_id_; }
  void SetDetail(std::string_view d) {
    if (active_) detail_.SetDetail(d);
  }

 private:
  bool active_ = false;
  const char* name_ = "";
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  double start_s_ = 0.0;
  Span detail_;  ///< Only `detail` field used; avoids a second buffer.
};

/// Emits a completed child span of the current innermost span (e.g. the
/// PhaseClock data-management/analytics/glue breakdown bridged under the
/// execute span). No-op when the current trace is unsampled. `start_s` and
/// `dur_s` are in tracer-anchor seconds.
void EmitChildSpan(const char* name, double start_s, double dur_s,
                   std::string_view detail = {});

/// True when the current thread is inside a sampled trace — lets callers
/// skip work (string formatting, PhaseClock bridging) that only feeds spans.
bool CurrentTraceSampled();

/// Trace id of the current thread's installed trace (0 when none).
uint64_t CurrentTraceId();

}  // namespace genbase::obs

#endif  // GENBASE_OBS_TRACE_H_
