#ifndef GENBASE_OBS_METRICS_H_
#define GENBASE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace genbase::obs {

/// \brief Label set of one metric instrument, e.g.
/// {{"instance","s3"},{"shard","0"}}. Canonicalized (sorted by key) at
/// registration, so label order never creates duplicate instruments.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter. Inc is a relaxed atomic add — safe from any
/// thread, cheap enough for per-operation hot paths. Components that need a
/// consistent multi-counter snapshot update their counters under the same
/// lock that guards the structure the counters describe (the mutex then
/// orders the relaxed writes for any reader holding it); the registry itself
/// never requires that.
class Counter {
 public:
  void Inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Settable gauge over a double (covers integral gauges too). Add and
/// SetMax are CAS loops — contention on a gauge is operation-granular here,
/// never a spin risk.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Keeps the high-water mark: value = max(value, v).
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Read-only copy of a histogram's state, safe to use after the
/// source instrument keeps moving.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty.
  double max = 0.0;  ///< 0 when empty.
  std::vector<int64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Value at quantile q in [0, 1]: defined for every q (empty -> 0,
  /// q <= 0 -> min, q >= 1 -> max, out-of-range clamps).
  double Quantile(double q) const;
};

/// \brief Log-bucketed concurrent histogram (1us floor, ~5% geometric
/// buckets — the same geometry as workload::LatencyHistogram, here with
/// atomic buckets so many threads can Observe without coordination).
/// min/max/sum are tracked atomically and stay exact; Observe is a handful
/// of relaxed atomic ops.
class Histogram {
 public:
  Histogram();
  void Observe(double seconds);
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +/-inf sentinels let concurrent first observations race safely;
  /// Snapshot maps the empty state back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// \brief One exported metric value (see MetricsRegistry::Snapshot).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0.0;       ///< Counters and gauges.
  HistogramSnapshot hist;   ///< Histograms only.
};

/// \brief Process-global metrics registry: named counters, gauges and
/// histograms with label sets. Instruments are registered once (mutex) and
/// then updated lock-free through stable pointers — the intended pattern is
/// "resolve handles in a component's constructor, Inc/Set on the hot path".
/// Instruments are never removed: a metric is a process-lifetime time
/// series, and components that come and go (one serving stack per bench
/// cell) distinguish themselves with an `instance` label
/// (NextInstanceId).
///
/// Exports: Snapshot() for programmatic access, PrometheusText() for the
/// text exposition format, ToJson() for METRICS_*.json artifacts.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under (name, labels), creating it on
  /// first use. The returned pointer is stable for the process lifetime.
  /// Same (name, canonicalized labels) always returns the same instrument;
  /// one name must keep one kind (enforced by check-fail in debug spirit:
  /// a kind clash returns a fresh unexported instrument rather than UB).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// All instruments, sorted by (name, labels) — deterministic export order.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition format (counters/gauges; histograms as
  /// summary quantiles plus _count/_sum).
  std::string PrometheusText() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// keyed by "name{k=\"v\",...}".
  std::string ToJson() const;

  /// "prefixN" with a process-unique N — the instance label components use
  /// to keep their instruments apart.
  static std::string NextInstanceId(const char* prefix);

 private:
  struct Instrument {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    Labels labels;
  };

  Instrument* GetOrCreate(const std::string& name, const Labels& labels,
                          MetricSample::Kind kind);

  mutable std::mutex mu_;
  /// Keyed by "name{k=\"v\",...}" (canonical labels), values stable because
  /// instruments are heap-allocated and never erased.
  std::map<std::string, Instrument> instruments_;
};

/// Canonical instrument key: name + sorted labels rendered as
/// `name{k="v",k2="v2"}` (bare name when label-free). Shared by the
/// registry and its exporters so tests can address instruments by key.
std::string MetricKey(const std::string& name, const Labels& labels);

}  // namespace genbase::obs

#endif  // GENBASE_OBS_METRICS_H_
