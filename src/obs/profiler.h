#ifndef GENBASE_OBS_PROFILER_H_
#define GENBASE_OBS_PROFILER_H_

#include <cstdint>

#include "obs/perf_counters.h"

namespace genbase::obs {

/// \brief Process-global resource-profiling switch. When enabled, the
/// request path additionally captures per-stage thread-CPU time
/// (CLOCK_THREAD_CPUTIME_ID next to every stage's wall clock), per-request
/// allocation deltas, periodic RSS samples, and hardware-counter deltas
/// around the execute stage. When disabled — the default — every capture
/// point is a single relaxed atomic load and a branch, so the serving hot
/// path pays nothing (fig7 gates the enabled cost at < 3% throughput).
///
/// Enabled by the `--profile=` flag on the figure benches or the
/// GENBASE_PROFILE environment variable (any non-empty value but "0").
class Profiler {
 public:
  static bool Enabled();
  static void SetEnabled(bool enabled);

  /// Thread-CPU clock reading for stage attribution: seconds on
  /// CLOCK_THREAD_CPUTIME_ID, or a negative sentinel when profiling is
  /// disabled (CpuDelta then reports 0 — callers never branch themselves).
  static double CpuBegin();
  static double CpuDelta(double begin);
};

/// --- process memory ----------------------------------------------------------

/// Resident set size from /proc/self/statm, in bytes; -1 where unavailable
/// (non-Linux). One small pread — microseconds, safe to sample every few
/// requests.
int64_t ReadRssBytes();

/// Samples RSS into the registry gauges `process_rss_bytes` (last sample)
/// and `process_peak_rss_bytes` (high-water mark across samples). No-op when
/// RSS is unavailable. Returns the sampled value for callers that want it.
int64_t SampleProcessRss();

/// --- execute-stage hardware counters -----------------------------------------

/// \brief Process-wide accumulation of hardware-counter deltas attributed to
/// the execute stage, summed across client threads. Monotone, like the
/// registry counters: report writers snapshot before/after a measured phase
/// and subtract. `samples` counts scopes that contributed valid readings —
/// zero means counters were unavailable and the derived rates are
/// meaningless (exported as null).
struct ExecutePerfTotals {
  PerfReading reading;
  int64_t samples = 0;

  ExecutePerfTotals operator-(const ExecutePerfTotals& other) const {
    ExecutePerfTotals d;
    d.reading = reading - other.reading;
    d.reading.valid = samples - other.samples > 0;
    d.samples = samples - other.samples;
    return d;
  }
};

ExecutePerfTotals ExecutePerfSnapshot();

/// \brief RAII hardware-counter scope for the execute stage: reads the
/// calling thread's counter group on entry and exit, accumulates the delta
/// into the process totals. Inert (one atomic load) when profiling is
/// disabled, and silently contributes nothing when counters are
/// unavailable — degradation, never failure.
class ScopedExecutePerf {
 public:
  ScopedExecutePerf();
  ~ScopedExecutePerf();

  ScopedExecutePerf(const ScopedExecutePerf&) = delete;
  ScopedExecutePerf& operator=(const ScopedExecutePerf&) = delete;

 private:
  bool active_ = false;
  PerfReading begin_;
};

}  // namespace genbase::obs

#endif  // GENBASE_OBS_PROFILER_H_
