#include "obs/perf_counters.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace genbase::obs {

PerfReading& PerfReading::operator+=(const PerfReading& other) {
  valid = valid || other.valid;
  cycles += other.cycles;
  instructions += other.instructions;
  cache_references += other.cache_references;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  return *this;
}

PerfReading PerfReading::operator-(const PerfReading& other) const {
  PerfReading d;
  d.valid = valid && other.valid;
  d.cycles = cycles - other.cycles;
  d.instructions = instructions - other.instructions;
  d.cache_references = cache_references - other.cache_references;
  d.cache_misses = cache_misses - other.cache_misses;
  d.branch_misses = branch_misses - other.branch_misses;
  return d;
}

std::string PerfReading::ToJson() const {
  if (!valid) {
    return "{\"cycles\":null,\"instructions\":null,"
           "\"cache_references\":null,\"cache_misses\":null,"
           "\"branch_misses\":null,\"ipc\":null,\"cache_miss_rate\":null}";
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"cycles\":%lld,\"instructions\":%lld,"
                "\"cache_references\":%lld,\"cache_misses\":%lld,"
                "\"branch_misses\":%lld,\"ipc\":%.3f,"
                "\"cache_miss_rate\":%.4f}",
                static_cast<long long>(cycles),
                static_cast<long long>(instructions),
                static_cast<long long>(cache_references),
                static_cast<long long>(cache_misses),
                static_cast<long long>(branch_misses), ipc(),
                cache_miss_rate());
  return buf;
}

#if defined(__linux__)

namespace {

int OpenEvent(uint32_t type, uint64_t config, int group_fd, uint64_t* id) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // The leader starts the group.
  attr.exclude_kernel = 1;  // Paranoid levels >= 1 forbid kernel counts.
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  const int fd = static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd,
              /*flags=*/0));
  if (fd >= 0 && id != nullptr) {
    if (ioctl(fd, PERF_EVENT_IOC_ID, id) != 0) *id = 0;
  }
  return fd;
}

}  // namespace

bool PerfCounterSet::Open() {
  if (open_attempted_) return available();
  open_attempted_ = true;
  struct EventSpec {
    uint32_t type;
    uint64_t config;
  };
  const EventSpec specs[kNumEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
  for (int i = 0; i < kNumEvents; ++i) {
    fds_[i] = OpenEvent(specs[i].type, specs[i].config,
                        i == 0 ? -1 : fds_[0], &ids_[i]);
    if (fds_[i] < 0) {
      // All-or-nothing: a partial group would silently bias every rate
      // derived from the missing member. Close and degrade to unavailable.
      Close();
      return false;
    }
  }
  group_fd_ = fds_[0];
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

PerfReading PerfCounterSet::Read() const {
  PerfReading reading;
  if (!available()) return reading;
  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout: nr, then {value, id} pairs.
  struct {
    uint64_t nr;
    struct {
      uint64_t value;
      uint64_t id;
    } values[kNumEvents];
  } data;
  const ssize_t n = read(group_fd_, &data, sizeof(data));
  if (n < static_cast<ssize_t>(sizeof(uint64_t)) ||
      data.nr != static_cast<uint64_t>(kNumEvents)) {
    return reading;
  }
  int64_t* fields[kNumEvents] = {&reading.cycles, &reading.instructions,
                                 &reading.cache_references,
                                 &reading.cache_misses,
                                 &reading.branch_misses};
  for (uint64_t v = 0; v < data.nr; ++v) {
    for (int i = 0; i < kNumEvents; ++i) {
      if (data.values[v].id == ids_[i]) {
        *fields[i] = static_cast<int64_t>(data.values[v].value);
      }
    }
  }
  reading.valid = true;
  return reading;
}

void PerfCounterSet::Close() {
  for (int i = 0; i < kNumEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
    fds_[i] = -1;
  }
  group_fd_ = -1;
}

#else  // !__linux__

bool PerfCounterSet::Open() {
  open_attempted_ = true;
  return false;
}

PerfReading PerfCounterSet::Read() const { return PerfReading{}; }

void PerfCounterSet::Close() {}

#endif

PerfCounterSet::~PerfCounterSet() { Close(); }

PerfCounterSet* ThreadPerfCounters() {
  thread_local PerfCounterSet set;
  if (!set.available()) set.Open();  // No-op after the first failed attempt.
  return &set;
}

}  // namespace genbase::obs
