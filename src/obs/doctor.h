#ifndef GENBASE_OBS_DOCTOR_H_
#define GENBASE_OBS_DOCTOR_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace genbase::obs::doctor {

/// \brief Bench-history regression doctor: ingests a directory of stamped
/// BENCH_*.json artifacts (workload figures and kernelbench), orders them by
/// stamp timestamp, and judges the newest run against a median-of-window
/// baseline built from the runs before it. Medians make the baseline robust
/// to one noisy historical run; the window keeps it tracking legitimate
/// drift instead of pinning to the oldest data.
struct DoctorOptions {
  /// Allowed fractional drop for higher-is-better metrics (throughput):
  /// value < baseline * (1 - throughput_slack) is a regression.
  double throughput_slack = 0.15;
  /// Allowed fractional rise for lower-is-better metrics (p99 latency,
  /// kernel ns/iter): value > baseline * (1 + latency_slack) regresses.
  double latency_slack = 0.25;
  /// Baseline = median of up to this many immediately-preceding runs that
  /// carry the series. A series with no history at all is "new" and passes.
  int baseline_window = 3;
};

/// One metric of the newest run, judged.
struct MetricVerdict {
  std::string series;   ///< e.g. "fig7/scidb/mixed/c8/s4:qps".
  double value = 0.0;
  double baseline = 0.0;     ///< Median of the window (0 when is_new).
  double change = 0.0;       ///< (value - baseline) / baseline; 0 when new.
  bool higher_is_better = false;
  bool is_new = false;       ///< No preceding run carries this series.
  bool regression = false;
};

/// One ingested artifact, in evaluated (timestamp) order.
struct RunSummary {
  std::string name;       ///< File name (or caller-provided label).
  std::string figure;
  std::string git_sha;
  std::string kernel_backend;
  std::string timestamp;
  int metrics = 0;        ///< Series extracted from this artifact.
};

struct DoctorReport {
  std::vector<RunSummary> runs;        ///< Oldest first; back() was judged.
  std::vector<MetricVerdict> verdicts; ///< Newest run's metrics.
  int skipped_files = 0;  ///< Inputs without a "figure" field (not bench).

  bool ok() const {
    for (const MetricVerdict& v : verdicts) {
      if (v.regression) return false;
    }
    return true;
  }
};

/// Core entry point: `documents` is (name, raw JSON text) pairs in any
/// order. Returns InvalidArgument on malformed JSON in a bench artifact,
/// NotFound when fewer than one parsable bench run exists.
genbase::Result<DoctorReport> CheckHistory(
    const std::vector<std::pair<std::string, std::string>>& documents,
    const DoctorOptions& options);

/// Filesystem wrapper: reads every regular `*.json` file in `dir`
/// (non-recursive) and delegates to CheckHistory.
genbase::Result<DoctorReport> CheckHistoryDir(const std::string& dir,
                                              const DoctorOptions& options);

/// Human-readable trend table + verdict lines for the report.
std::string FormatReport(const DoctorReport& report);

}  // namespace genbase::obs::doctor

#endif  // GENBASE_OBS_DOCTOR_H_
