#ifndef GENBASE_OBS_TRACE_EXPORT_H_
#define GENBASE_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace genbase::obs {

/// Renders spans as Chrome trace_event JSON ("X" complete events), loadable
/// in Perfetto / chrome://tracing. Trace and span ids are carried in args
/// (hex strings — trace ids exceed JSON's exact-integer range). When
/// `stamp_json` is non-empty it must be a JSON object (e.g. from
/// bench::StampJson) and is attached under "metadata" so trace artifacts
/// carry the same provenance as bench reports.
std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::string& stamp_json = {});

/// Renders the slow-query log as JSONL: one JSON object per line, one line
/// per tail-kept request, with per-stage wall and CPU seconds, the
/// allocation delta, and the keep reasons.
std::string SlowQueryJsonl(const std::vector<SlowQueryRecord>& records);

/// Aggregates a span forest into folded-stack lines — the input format of
/// flamegraph.pl / speedscope / inferno: one line per distinct root-to-leaf
/// path, `name;child;grandchild <self-weight-in-us>`, sorted by path.
/// Weights are self time (span duration minus the sum of its children), so
/// stack totals reconstruct exactly and no time is double-counted. Spans
/// with unresolvable parents start new roots; zero-weight paths are omitted.
std::string FoldedStacks(const std::vector<Span>& spans);

/// Writes `contents` to `path` (truncating). Returns false on I/O error.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace genbase::obs

#endif  // GENBASE_OBS_TRACE_EXPORT_H_
