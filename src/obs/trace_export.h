#ifndef GENBASE_OBS_TRACE_EXPORT_H_
#define GENBASE_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace genbase::obs {

/// Renders spans as Chrome trace_event JSON ("X" complete events), loadable
/// in Perfetto / chrome://tracing. Trace and span ids are carried in args
/// (hex strings — trace ids exceed JSON's exact-integer range).
std::string ChromeTraceJson(const std::vector<Span>& spans);

/// Renders the slow-query log as JSONL: one JSON object per line, one line
/// per tail-kept request, with per-stage seconds and the keep reasons.
std::string SlowQueryJsonl(const std::vector<SlowQueryRecord>& records);

/// Writes `contents` to `path` (truncating). Returns false on I/O error.
bool WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace genbase::obs

#endif  // GENBASE_OBS_TRACE_EXPORT_H_
