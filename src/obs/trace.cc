#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "common/rng.h"

namespace genbase::obs {

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kQueue:
      return "queue";
    case RequestStage::kCache:
      return "cache";
    case RequestStage::kFlight:
      return "flight";
    case RequestStage::kDispatch:
      return "dispatch";
    case RequestStage::kExecute:
      return "execute";
    case RequestStage::kVerify:
      return "verify";
    case RequestStage::kNumRequestStages:
      break;
  }
  return "?";
}

uint64_t RequestTraceId(uint64_t seed, std::string_view workload,
                        uint64_t index) {
  const uint64_t id = SplitMix64(SeedFromTag(workload, seed, index));
  return id == 0 ? 1 : id;  // 0 means "no trace installed".
}

bool TraceSampled(uint64_t trace_id, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Re-mix so sampling is independent of any other use of the raw id.
  const double u = (SplitMix64(trace_id ^ 0x6f62735f74726163ULL) >> 11) *
                   0x1.0p-53;
  return u < rate;
}

/// Thread-local trace context + span ring. Defined at namespace scope so
/// the friend declaration in Tracer resolves to this type.
struct TracerTls {
  uint64_t trace_id = 0;
  uint64_t next_span_id = 0;
  uint64_t current_parent = 0;
  bool sampled = false;
  Tracer::Ring* ring = nullptr;

  ~TracerTls() {
    if (ring != nullptr) {
      // Hand the ring back to the pool; undrained spans stay in place and
      // are picked up by the next Collect().
      ring->in_use.store(false, std::memory_order_release);
    }
  }
};

namespace {
thread_local TracerTls g_tls;
}  // namespace

Tracer::Tracer()
    : anchor_(std::chrono::steady_clock::now()),
      spans_recorded_(
          MetricsRegistry::Global().GetCounter("trace_spans_recorded_total")),
      spans_dropped_(
          MetricsRegistry::Global().GetCounter("trace_spans_dropped_total")) {
  if (const char* env = std::getenv("GENBASE_TRACE_SAMPLE")) {
    char* end = nullptr;
    const double rate = std::strtod(env, &end);
    if (end != env) set_sample_rate(rate);
  }
}

Tracer& Tracer::Global() {
  // lint:allow(raw-new-delete): leaked process singleton — TLS ring destructors run after main() and must find it alive
  static auto* tracer = new Tracer();
  return *tracer;
}

void Tracer::set_sample_rate(double rate) {
  sample_rate_.store(std::clamp(rate, 0.0, 1.0), std::memory_order_relaxed);
}

double Tracer::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       anchor_)
      .count();
}

uint32_t Tracer::ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

Tracer::Ring* Tracer::AcquireRing() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    bool expected = false;
    if (ring->in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return ring.get();
    }
  }
  rings_.push_back(std::make_unique<Ring>());
  rings_.back()->in_use.store(true, std::memory_order_release);
  return rings_.back().get();
}

void Tracer::Record(const Span& span) {
  if (g_tls.ring == nullptr) g_tls.ring = AcquireRing();
  Ring* ring = g_tls.ring;
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  const uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingCapacity) {
    spans_dropped_->Inc();
    return;
  }
  ring->slots[head & (kRingCapacity - 1)] = span;
  ring->head.store(head + 1, std::memory_order_release);
  spans_recorded_->Inc();
}

void Tracer::DrainRing(Ring* ring) {
  const uint64_t head = ring->head.load(std::memory_order_acquire);
  uint64_t tail = ring->tail.load(std::memory_order_relaxed);
  for (; tail != head; ++tail) {
    collected_.push_back(ring->slots[tail & (kRingCapacity - 1)]);
  }
  ring->tail.store(tail, std::memory_order_release);
}

size_t Tracer::Collect() {
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings.reserve(rings_.size());
    for (auto& ring : rings_) rings.push_back(ring.get());
  }
  std::lock_guard<std::mutex> lock(collect_mu_);
  const size_t before = collected_.size();
  for (Ring* ring : rings) DrainRing(ring);
  return collected_.size() - before;
}

std::vector<Span> Tracer::TakeCollected() {
  Collect();
  std::lock_guard<std::mutex> lock(collect_mu_);
  std::vector<Span> out = std::move(collected_);
  collected_.clear();
  return out;
}

void Tracer::LogSlowQuery(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(collect_mu_);
  slow_queries_.push_back(std::move(record));
}

std::vector<SlowQueryRecord> Tracer::TakeSlowQueries() {
  std::lock_guard<std::mutex> lock(collect_mu_);
  std::vector<SlowQueryRecord> out = std::move(slow_queries_);
  slow_queries_.clear();
  return out;
}

ScopedTrace::ScopedTrace(uint64_t trace_id, bool sampled)
    : saved_trace_id_(g_tls.trace_id),
      saved_parent_(g_tls.current_parent),
      saved_next_span_id_(g_tls.next_span_id),
      saved_sampled_(g_tls.sampled) {
  g_tls.trace_id = trace_id;
  g_tls.current_parent = 0;
  g_tls.next_span_id = 0;
  g_tls.sampled = sampled;
}

ScopedTrace::~ScopedTrace() {
  g_tls.trace_id = saved_trace_id_;
  g_tls.current_parent = saved_parent_;
  g_tls.next_span_id = saved_next_span_id_;
  g_tls.sampled = saved_sampled_;
}

ScopedSpan::ScopedSpan(const char* name) {
  if (!g_tls.sampled) return;
  active_ = true;
  name_ = name;
  start_s_ = Tracer::Global().NowSeconds();
  span_id_ = ++g_tls.next_span_id;
  parent_id_ = g_tls.current_parent;
  g_tls.current_parent = span_id_;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  g_tls.current_parent = parent_id_;
  Span span;
  span.trace_id = g_tls.trace_id;
  span.span_id = span_id_;
  span.parent_id = parent_id_;
  span.name = name_;
  span.start_s = start_s_;
  span.dur_s = Tracer::Global().NowSeconds() - start_s_;
  span.tid = Tracer::ThreadOrdinal();
  std::memcpy(span.detail, detail_.detail, sizeof(span.detail));
  Tracer::Global().Record(span);
}

void EmitChildSpan(const char* name, double start_s, double dur_s,
                   std::string_view detail) {
  if (!g_tls.sampled) return;
  Span span;
  span.trace_id = g_tls.trace_id;
  span.span_id = ++g_tls.next_span_id;
  span.parent_id = g_tls.current_parent;
  span.name = name;
  span.start_s = start_s;
  span.dur_s = dur_s;
  span.tid = Tracer::ThreadOrdinal();
  span.SetDetail(detail);
  Tracer::Global().Record(span);
}

bool CurrentTraceSampled() { return g_tls.sampled; }

uint64_t CurrentTraceId() { return g_tls.trace_id; }

}  // namespace genbase::obs
