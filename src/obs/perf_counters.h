#ifndef GENBASE_OBS_PERF_COUNTERS_H_
#define GENBASE_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace genbase::obs {

/// \brief One reading of the hardware-counter group this repo cares about
/// for kernel work: cycles + instructions (→ IPC), last-level-cache
/// references + misses (→ cache-miss rate), branch misses. `valid` is false
/// when the counters could not be read — unavailable hardware, a container
/// with `kernel.perf_event_paranoid` locked down, or a non-Linux host — and
/// every derived rate then reports as unavailable (JSON null), never as an
/// error: resource profiles degrade, benchmarks keep running.
struct PerfReading {
  bool valid = false;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_references = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;

  double ipc() const {
    return valid && cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  double cache_miss_rate() const {
    return valid && cache_references > 0
               ? static_cast<double>(cache_misses) /
                     static_cast<double>(cache_references)
               : 0.0;
  }

  PerfReading& operator+=(const PerfReading& other);
  PerfReading operator-(const PerfReading& other) const;

  /// `{"cycles":N,...,"ipc":X}` — or every field null when !valid, the
  /// "counters unavailable, not an error" contract in artifact form.
  std::string ToJson() const;
};

/// \brief A per-thread group of hardware counters opened with
/// `perf_event_open` (cycles leads the group so all five members stop and
/// read together). Open once, then Read() deltas around the scopes of
/// interest — a read is one syscall, cheap enough for per-request use on
/// the execute stage.
///
/// All failure is absorbed at Open(): when the syscall is unavailable
/// (EPERM under `kernel.perf_event_paranoid`, ENOENT in VMs without a PMU,
/// non-Linux builds), available() is false and Read() returns an invalid
/// reading. Counters measure the calling thread only, so each workload
/// client owns its own set (see ThreadPerfCounters()).
class PerfCounterSet {
 public:
  PerfCounterSet() = default;
  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// Opens the counter group for the calling thread. Returns available().
  /// Idempotent: a second call on an open set is a no-op.
  bool Open();

  bool available() const { return group_fd_ >= 0; }

  /// Current cumulative counts (thread lifetime). Invalid when !available()
  /// or the read itself fails.
  PerfReading Read() const;

  void Close();

 private:
  static constexpr int kNumEvents = 5;
  int group_fd_ = -1;
  int fds_[kNumEvents] = {-1, -1, -1, -1, -1};
  uint64_t ids_[kNumEvents] = {0, 0, 0, 0, 0};
  bool open_attempted_ = false;
};

/// The calling thread's lazily-opened counter set (one per thread, opened on
/// first use, closed at thread exit). Never nullptr; check ->available().
PerfCounterSet* ThreadPerfCounters();

}  // namespace genbase::obs

#endif  // GENBASE_OBS_PERF_COUNTERS_H_
