#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace genbase::obs {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string Hex(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendEscaped(&out, span.name);
    out.append("\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":");
    out.append(Num(span.start_s * 1e6));
    out.append(",\"dur\":");
    out.append(Num(span.dur_s * 1e6));
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(span.tid));
    out.append(",\"args\":{\"trace_id\":\"");
    out.append(Hex(span.trace_id));
    out.append("\",\"span_id\":");
    out.append(std::to_string(span.span_id));
    out.append(",\"parent_id\":");
    out.append(std::to_string(span.parent_id));
    if (span.synthetic) out.append(",\"synthetic\":true");
    if (span.detail[0] != '\0') {
      out.append(",\"detail\":\"");
      AppendEscaped(&out, span.detail);
      out.push_back('"');
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

std::string SlowQueryJsonl(const std::vector<SlowQueryRecord>& records) {
  std::string out;
  for (const SlowQueryRecord& r : records) {
    out.append("{\"trace_id\":\"");
    out.append(Hex(r.trace_id));
    out.append("\",\"workload\":\"");
    AppendEscaped(&out, r.workload);
    out.append("\",\"query\":\"");
    AppendEscaped(&out, r.query);
    out.append("\",\"variant\":");
    out.append(std::to_string(r.variant));
    out.append(",\"class_id\":");
    out.append(std::to_string(r.class_id));
    out.append(",\"start_s\":");
    out.append(Num(r.start_s));
    out.append(",\"latency_s\":");
    out.append(Num(r.latency_s));
    out.append(",\"stages_s\":{");
    for (int i = 0; i < kNumRequestStages; ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('"');
      out.append(RequestStageName(static_cast<RequestStage>(i)));
      out.append("\":");
      out.append(Num(r.stages.s[i]));
    }
    out.append("},\"shed\":");
    out.append(r.shed ? "true" : "false");
    out.append(",\"stale_tripwire\":");
    out.append(r.stale_tripwire ? "true" : "false");
    out.append(",\"deadline_missed\":");
    out.append(r.deadline_missed ? "true" : "false");
    out.append(",\"verify_failed\":");
    out.append(r.verify_failed ? "true" : "false");
    out.append(",\"slowest\":");
    out.append(r.slowest ? "true" : "false");
    out.append("}\n");
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.is_open()) return false;
  f.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return f.good();
}

}  // namespace genbase::obs

