#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <unordered_map>
#include <vector>

namespace genbase::obs {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string Hex(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::string& stamp_json) {
  std::string out = "{\"displayTimeUnit\":\"ms\",";
  if (!stamp_json.empty()) {
    out.append("\"metadata\":");
    out.append(stamp_json);
    out.push_back(',');
  }
  out.append("\"traceEvents\":[");
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendEscaped(&out, span.name);
    out.append("\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":");
    out.append(Num(span.start_s * 1e6));
    out.append(",\"dur\":");
    out.append(Num(span.dur_s * 1e6));
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(span.tid));
    out.append(",\"args\":{\"trace_id\":\"");
    out.append(Hex(span.trace_id));
    out.append("\",\"span_id\":");
    out.append(std::to_string(span.span_id));
    out.append(",\"parent_id\":");
    out.append(std::to_string(span.parent_id));
    if (span.synthetic) out.append(",\"synthetic\":true");
    if (span.detail[0] != '\0') {
      out.append(",\"detail\":\"");
      AppendEscaped(&out, span.detail);
      out.push_back('"');
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

std::string SlowQueryJsonl(const std::vector<SlowQueryRecord>& records) {
  std::string out;
  for (const SlowQueryRecord& r : records) {
    out.append("{\"trace_id\":\"");
    out.append(Hex(r.trace_id));
    out.append("\",\"workload\":\"");
    AppendEscaped(&out, r.workload);
    out.append("\",\"query\":\"");
    AppendEscaped(&out, r.query);
    out.append("\",\"variant\":");
    out.append(std::to_string(r.variant));
    out.append(",\"class_id\":");
    out.append(std::to_string(r.class_id));
    out.append(",\"start_s\":");
    out.append(Num(r.start_s));
    out.append(",\"latency_s\":");
    out.append(Num(r.latency_s));
    out.append(",\"stages_s\":{");
    for (int i = 0; i < kNumRequestStages; ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('"');
      out.append(RequestStageName(static_cast<RequestStage>(i)));
      out.append("\":");
      out.append(Num(r.stages.s[i]));
    }
    // CPU attribution rides along only when the profiler captured it —
    // an all-zero object would be indistinguishable from "measured, idle".
    if (r.stages.CpuSum() > 0.0) {
      out.append("},\"stages_cpu_s\":{");
      for (int i = 0; i < kNumRequestStages; ++i) {
        if (i > 0) out.push_back(',');
        out.push_back('"');
        out.append(RequestStageName(static_cast<RequestStage>(i)));
        out.append("\":");
        out.append(Num(r.stages.cpu[i]));
      }
    }
    out.append("},\"alloc_delta_bytes\":");
    if (r.alloc_delta_bytes >= 0) {
      out.append(std::to_string(r.alloc_delta_bytes));
    } else {
      out.append("null");
    }
    out.append(",\"shed\":");
    out.append(r.shed ? "true" : "false");
    out.append(",\"stale_tripwire\":");
    out.append(r.stale_tripwire ? "true" : "false");
    out.append(",\"deadline_missed\":");
    out.append(r.deadline_missed ? "true" : "false");
    out.append(",\"verify_failed\":");
    out.append(r.verify_failed ? "true" : "false");
    out.append(",\"retries\":");
    out.append(std::to_string(r.retries));
    out.append(",\"hedged\":");
    out.append(r.hedged ? "true" : "false");
    out.append(",\"slowest\":");
    out.append(r.slowest ? "true" : "false");
    out.append("}\n");
  }
  return out;
}

std::string FoldedStacks(const std::vector<Span>& spans) {
  // Index the forest. Span ids are unique within a trace but reused across
  // traces, so key by (trace_id, span_id).
  struct Key {
    uint64_t trace_id;
    uint64_t span_id;
    bool operator==(const Key& o) const {
      return trace_id == o.trace_id && span_id == o.span_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.trace_id * 0x9E3779B97F4A7C15ull ^
                                   k.span_id);
    }
  };
  std::unordered_map<Key, size_t, KeyHash> index;
  index.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    index[{spans[i].trace_id, spans[i].span_id}] = i;
  }

  std::vector<double> child_dur(spans.size(), 0.0);
  for (const Span& span : spans) {
    if (span.parent_id == 0) continue;
    const auto it = index.find({span.trace_id, span.parent_id});
    if (it != index.end()) child_dur[it->second] += span.dur_s;
  }

  // Each span contributes its self time to its root-to-span path. Paths are
  // built walking parent links; a missing parent (dropped span) truncates
  // the path there rather than discarding the sample.
  std::map<std::string, double> weights;
  std::string path;
  for (size_t i = 0; i < spans.size(); ++i) {
    const double self_s = std::max(0.0, spans[i].dur_s - child_dur[i]);
    if (self_s <= 0.0) continue;
    path.clear();
    size_t cur = i;
    for (int depth = 0; depth < 64; ++depth) {
      if (path.empty()) {
        path = spans[cur].name;
      } else {
        path.insert(0, ";");
        path.insert(0, spans[cur].name);
      }
      if (spans[cur].parent_id == 0) break;
      const auto it =
          index.find({spans[cur].trace_id, spans[cur].parent_id});
      if (it == index.end()) break;
      cur = it->second;
    }
    weights[path] += self_s;
  }

  std::string out;
  for (const auto& [stack, seconds] : weights) {
    const long long us = std::llround(seconds * 1e6);
    if (us <= 0) continue;
    out.append(stack);
    out.push_back(' ');
    out.append(std::to_string(us));
    out.push_back('\n');
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.is_open()) return false;
  f.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return f.good();
}

}  // namespace genbase::obs
