#include "obs/profiler.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"
#include "obs/metrics.h"

#if defined(__linux__)
#include <unistd.h>

#include <cstdio>
#endif

namespace genbase::obs {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("GENBASE_PROFILE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

}  // namespace

bool Profiler::Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void Profiler::SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

double Profiler::CpuBegin() {
  if (!Enabled()) return -1.0;
  return ThreadCpuTimer::Now();
}

double Profiler::CpuDelta(double begin) {
  if (begin < 0.0) return 0.0;
  const double d = ThreadCpuTimer::Now() - begin;
  return d > 0.0 ? d : 0.0;
}

int64_t ReadRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared text lib data dt", in pages.
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int matched = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return -1;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<int64_t>(resident_pages) *
         static_cast<int64_t>(page > 0 ? page : 4096);
#else
  return -1;
#endif
}

int64_t SampleProcessRss() {
  const int64_t rss = ReadRssBytes();
  if (rss < 0) return rss;
  static Gauge* current =
      MetricsRegistry::Global().GetGauge("process_rss_bytes", {});
  static Gauge* peak =
      MetricsRegistry::Global().GetGauge("process_peak_rss_bytes", {});
  current->Set(static_cast<double>(rss));
  peak->SetMax(static_cast<double>(rss));
  return rss;
}

namespace {

/// Lock-free process-wide execute-perf accumulator. Individual fields are
/// relaxed and independently updated, so a snapshot is not an atomic cut
/// across fields — acceptable for the monotone before/after-phase deltas the
/// reports take, where per-field drift is bounded by one in-flight request.
struct PerfAccumulator {
  std::atomic<int64_t> cycles{0};
  std::atomic<int64_t> instructions{0};
  std::atomic<int64_t> cache_references{0};
  std::atomic<int64_t> cache_misses{0};
  std::atomic<int64_t> branch_misses{0};
  std::atomic<int64_t> samples{0};
};

PerfAccumulator& ExecuteAccumulator() {
  static PerfAccumulator acc;
  return acc;
}

}  // namespace

ExecutePerfTotals ExecutePerfSnapshot() {
  PerfAccumulator& acc = ExecuteAccumulator();
  ExecutePerfTotals t;
  t.samples = acc.samples.load(std::memory_order_relaxed);
  t.reading.valid = t.samples > 0;
  t.reading.cycles = acc.cycles.load(std::memory_order_relaxed);
  t.reading.instructions = acc.instructions.load(std::memory_order_relaxed);
  t.reading.cache_references =
      acc.cache_references.load(std::memory_order_relaxed);
  t.reading.cache_misses = acc.cache_misses.load(std::memory_order_relaxed);
  t.reading.branch_misses = acc.branch_misses.load(std::memory_order_relaxed);
  return t;
}

ScopedExecutePerf::ScopedExecutePerf() {
  if (!Profiler::Enabled()) return;
  PerfCounterSet* set = ThreadPerfCounters();
  if (!set->available()) return;
  begin_ = set->Read();
  active_ = begin_.valid;
}

ScopedExecutePerf::~ScopedExecutePerf() {
  if (!active_) return;
  const PerfReading end = ThreadPerfCounters()->Read();
  if (!end.valid) return;
  const PerfReading d = end - begin_;
  PerfAccumulator& acc = ExecuteAccumulator();
  acc.cycles.fetch_add(d.cycles, std::memory_order_relaxed);
  acc.instructions.fetch_add(d.instructions, std::memory_order_relaxed);
  acc.cache_references.fetch_add(d.cache_references,
                                 std::memory_order_relaxed);
  acc.cache_misses.fetch_add(d.cache_misses, std::memory_order_relaxed);
  acc.branch_misses.fetch_add(d.branch_misses, std::memory_order_relaxed);
  acc.samples.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace genbase::obs
