#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace genbase::obs {

namespace {

// Same geometry as workload::LatencyHistogram: 1us floor, ~5% growth, range
// past 1000s. Kept in lockstep so per-stage quantiles from either side are
// comparable.
constexpr double kMinTracked = 1e-6;
constexpr double kGrowth = 1.05;
constexpr int kNumBuckets = 427;
const double kLogGrowth = std::log(kGrowth);

int BucketFor(double seconds) {
  if (!(seconds > kMinTracked)) return 0;
  // Clamp while still a double: float→int conversion of an out-of-range
  // value (inf, or anything past INT_MAX) is UB, so the comparison must
  // happen before the cast. The negated form also routes NaN to the cap.
  const double b =
      std::floor(std::log(seconds / kMinTracked) / kLogGrowth) + 1.0;
  if (!(b < kNumBuckets - 1)) return kNumBuckets - 1;
  return std::max(1, static_cast<int>(b));
}

double BucketValue(int bucket) {
  if (bucket == 0) return kMinTracked;
  return kMinTracked * std::pow(kGrowth, bucket - 0.5);
}

void AtomicAddDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendEscapedValue(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

std::string FormatDouble(double v) {
  char buf[40];
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count)));
  if (rank >= count) return max;
  if (rank <= 1) return min;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return std::clamp(BucketValue(static_cast<int>(i)), min, max);
    }
  }
  return max;
}

Histogram::Histogram() : buckets_(kNumBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double seconds) {
  if (seconds < 0 || !std::isfinite(seconds)) seconds = 0.0;
  buckets_[static_cast<size_t>(BucketFor(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, seconds);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Extremes start at +/-inf so concurrent first observations need no
  // seeding handshake; Snapshot maps the empty state back to 0.
  AtomicMinDouble(&min_, seconds);
  AtomicMaxDouble(&max_, seconds);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return s;
}

std::string MetricKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key.append(sorted[i].first).append("=\"");
    AppendEscapedValue(&key, sorted[i].second);
    key.push_back('"');
  }
  key.push_back('}');
  return key;
}

MetricsRegistry& MetricsRegistry::Global() {
  // lint:allow(raw-new-delete): leaked process singleton — instrument pointers are handed out for the process lifetime
  static auto* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::NextInstanceId(const char* prefix) {
  static std::atomic<uint64_t> seq{0};
  return std::string(prefix) +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(
    const std::string& name, const Labels& labels, MetricSample::Kind kind) {
  const std::string key = MetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = kind;
    inst.labels = labels;
    std::sort(inst.labels.begin(), inst.labels.end());
    switch (kind) {
      case MetricSample::Kind::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case MetricSample::Kind::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case MetricSample::Kind::kHistogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments_.emplace(key, std::move(inst)).first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  Instrument* inst = GetOrCreate(name, labels, MetricSample::Kind::kCounter);
  if (inst->counter == nullptr) {
    // Kind clash with an existing gauge/histogram of the same key: hand back
    // a private instrument (never exported) instead of corrupting the
    // registered one. This is a programming error surfaced by the missing
    // series, not a crash.
    // lint:allow(raw-new-delete): deliberately leaked never-exported fallback for kind clashes
    static auto* orphan = new Counter();
    return orphan;
  }
  return inst->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  Instrument* inst = GetOrCreate(name, labels, MetricSample::Kind::kGauge);
  if (inst->gauge == nullptr) {
    // lint:allow(raw-new-delete): deliberately leaked never-exported fallback for kind clashes
    static auto* orphan = new Gauge();
    return orphan;
  }
  return inst->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  Instrument* inst =
      GetOrCreate(name, labels, MetricSample::Kind::kHistogram);
  if (inst->histogram == nullptr) {
    // lint:allow(raw-new-delete): deliberately leaked never-exported fallback for kind clashes
    static auto* orphan = new Histogram();
    return orphan;
  }
  return inst->histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    MetricSample s;
    // Recover the bare name from the canonical key.
    const size_t brace = key.find('{');
    s.name = brace == std::string::npos ? key : key.substr(0, brace);
    s.labels = inst.labels;
    s.kind = inst.kind;
    switch (inst.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(inst.counter->Value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = inst.gauge->Value();
        break;
      case MetricSample::Kind::kHistogram:
        s.hist = inst.histogram->Snapshot();
        s.value = static_cast<double>(s.hist.count);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out;
  out.reserve(4096);
  std::string last_name;
  for (const MetricSample& s : samples) {
    const std::string key = MetricKey(s.name, s.labels);
    if (s.name != last_name) {
      out.append("# TYPE ").append(s.name).append(" ");
      out.append(s.kind == MetricSample::Kind::kCounter   ? "counter"
                 : s.kind == MetricSample::Kind::kGauge ? "gauge"
                                                          : "summary");
      out.push_back('\n');
      last_name = s.name;
    }
    if (s.kind == MetricSample::Kind::kHistogram) {
      for (double q : {0.5, 0.9, 0.99}) {
        Labels with_q = s.labels;
        with_q.emplace_back("quantile", FormatDouble(q));
        out.append(MetricKey(s.name, with_q))
            .append(" ")
            .append(FormatDouble(s.hist.Quantile(q)))
            .push_back('\n');
      }
      out.append(MetricKey(s.name + "_count", s.labels))
          .append(" ")
          .append(FormatDouble(static_cast<double>(s.hist.count)))
          .push_back('\n');
      out.append(MetricKey(s.name + "_sum", s.labels))
          .append(" ")
          .append(FormatDouble(s.hist.sum))
          .push_back('\n');
    } else {
      out.append(key).append(" ").append(FormatDouble(s.value)).push_back(
          '\n');
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string counters, gauges, histograms;
  for (const MetricSample& s : samples) {
    const std::string key = MetricKey(s.name, s.labels);
    std::string entry = "\"";
    AppendEscapedValue(&entry, key);
    entry.append("\":");
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        if (!counters.empty()) counters.push_back(',');
        counters.append(entry).append(FormatDouble(s.value));
        break;
      case MetricSample::Kind::kGauge:
        if (!gauges.empty()) gauges.push_back(',');
        gauges.append(entry).append(FormatDouble(s.value));
        break;
      case MetricSample::Kind::kHistogram: {
        if (!histograms.empty()) histograms.push_back(',');
        entry.append("{\"count\":")
            .append(FormatDouble(static_cast<double>(s.hist.count)))
            .append(",\"sum_s\":")
            .append(FormatDouble(s.hist.sum))
            .append(",\"min_s\":")
            .append(FormatDouble(s.hist.min))
            .append(",\"max_s\":")
            .append(FormatDouble(s.hist.max))
            .append(",\"p50_s\":")
            .append(FormatDouble(s.hist.Quantile(0.5)))
            .append(",\"p99_s\":")
            .append(FormatDouble(s.hist.Quantile(0.99)))
            .append("}");
        histograms.append(entry);
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out.append(counters).append("},\"gauges\":{").append(gauges);
  out.append("},\"histograms\":{").append(histograms).append("}}");
  return out;
}

}  // namespace genbase::obs
