#include "obs/doctor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/json.h"

namespace genbase::obs::doctor {

namespace {

struct ParsedRun {
  RunSummary summary;
  /// (series, value, higher_is_better) triples extracted from the artifact.
  std::vector<std::tuple<std::string, double, bool>> metrics;
};

std::string CompactNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Series identity for one workload report: enough run-shape dimensions that
/// only like runs compare (a 4-shard run must never baseline a 1-shard run).
std::string ReportSeriesPrefix(const std::string& figure,
                               const json::Value& report) {
  std::string key = figure;
  key += "/" + report.StringOr("engine", "?");
  key += "/" + report.StringOr("workload", "?");
  key += "/c" + CompactNumber(report.NumberOr("clients", 0));
  key += "/s" + CompactNumber(report.NumberOr("shards", 1));
  const double variants = report.NumberOr("param_variants", 1);
  if (variants > 1) key += "/v" + CompactNumber(variants);
  const double offered = report.NumberOr("offered_qps", 0);
  if (offered > 0) key += "/off" + CompactNumber(offered);
  return key;
}

void ExtractWorkloadMetrics(const std::string& figure,
                            const json::Value& report, ParsedRun* run) {
  const std::string prefix = ReportSeriesPrefix(figure, report);
  const double qps = report.NumberOr("achieved_qps", -1);
  if (qps >= 0) {
    run->metrics.emplace_back(prefix + ":qps", qps, /*higher=*/true);
  }
  if (const json::Value* total = report.Find("total")) {
    if (const json::Value* latency = total->Find("latency")) {
      const double p99 = latency->NumberOr("p99_s", -1);
      // Sub-granularity p99s (tiny scales round to 0) carry no signal and
      // would divide by zero in the change computation.
      if (p99 > 0) {
        run->metrics.emplace_back(prefix + ":p99_s", p99, /*higher=*/false);
      }
    }
  }
}

void ExtractKernelMetrics(const std::string& figure,
                          const json::Value& doc, ParsedRun* run) {
  const json::Value* kernels = doc.Find("kernels");
  if (kernels == nullptr || !kernels->is_object()) return;
  for (const auto& [name, kernel] : kernels->object) {
    const double ns = kernel.NumberOr("ns", -1);
    if (ns > 0) {
      run->metrics.emplace_back(figure + "/" + name + ":ns", ns,
                                /*higher=*/false);
    }
  }
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

genbase::Result<DoctorReport> CheckHistory(
    const std::vector<std::pair<std::string, std::string>>& documents,
    const DoctorOptions& options) {
  DoctorReport report;
  std::vector<ParsedRun> runs;
  for (const auto& [name, text] : documents) {
    auto parsed = json::Parse(text);
    if (!parsed.ok()) {
      return genbase::Status::InvalidArgument(name + ": " +
                                              parsed.status().message());
    }
    const json::Value doc = std::move(parsed).ValueOrDie();
    const std::string figure = doc.StringOr("figure", "");
    if (figure.empty()) {
      // Not a bench artifact (a metrics snapshot, a trace, a stray file) —
      // skipping, not failing, keeps the history directory easy to curate.
      ++report.skipped_files;
      continue;
    }
    ParsedRun run;
    run.summary.name = name;
    run.summary.figure = figure;
    if (const json::Value* stamp = doc.Find("stamp")) {
      run.summary.git_sha = stamp->StringOr("git_sha", "");
      run.summary.kernel_backend = stamp->StringOr("kernel_backend", "");
      run.summary.timestamp = stamp->StringOr("timestamp", "");
    }
    if (const json::Value* reports = doc.Find("reports")) {
      for (const json::Value& r : reports->array) {
        if (r.is_object()) ExtractWorkloadMetrics(figure, r, &run);
      }
    }
    ExtractKernelMetrics(figure, doc, &run);
    run.summary.metrics = static_cast<int>(run.metrics.size());
    runs.push_back(std::move(run));
  }
  if (runs.empty()) {
    return genbase::Status::NotFound("no bench artifacts found");
  }

  // ISO-8601 UTC timestamps order lexicographically; unstamped artifacts
  // sort oldest (legacy seeds), the file name breaks ties deterministically.
  std::sort(runs.begin(), runs.end(), [](const ParsedRun& a,
                                         const ParsedRun& b) {
    return std::tie(a.summary.timestamp, a.summary.name) <
           std::tie(b.summary.timestamp, b.summary.name);
  });
  for (const ParsedRun& run : runs) report.runs.push_back(run.summary);

  // Judge the newest run: baseline each of its series on the median of the
  // last `baseline_window` preceding runs that carry the series.
  const ParsedRun& latest = runs.back();
  for (const auto& [series, value, higher] : latest.metrics) {
    MetricVerdict v;
    v.series = series;
    v.value = value;
    v.higher_is_better = higher;
    std::vector<double> window;
    for (size_t i = runs.size() - 1; i-- > 0;) {
      for (const auto& [s, past_value, h] : runs[i].metrics) {
        if (s == series) {
          window.push_back(past_value);
          break;
        }
      }
      if (static_cast<int>(window.size()) >= options.baseline_window) break;
    }
    if (window.empty()) {
      v.is_new = true;
    } else {
      v.baseline = Median(std::move(window));
      v.change = v.baseline != 0 ? (v.value - v.baseline) / v.baseline : 0;
      v.regression = higher ? v.change < -options.throughput_slack
                            : v.change > options.latency_slack;
    }
    report.verdicts.push_back(std::move(v));
  }
  return report;
}

genbase::Result<DoctorReport> CheckHistoryDir(const std::string& dir,
                                              const DoctorOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return genbase::Status::NotFound("not a directory: " + dir);
  }
  std::vector<std::pair<std::string, std::string>> documents;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".json") continue;
    std::ifstream f(path, std::ios::binary);
    if (!f.is_open()) {
      return genbase::Status::IOError("cannot read " + path.string());
    }
    std::ostringstream contents;
    contents << f.rdbuf();
    documents.emplace_back(path.filename().string(), contents.str());
  }
  if (ec) {
    return genbase::Status::IOError("cannot list " + dir + ": " +
                                    ec.message());
  }
  return CheckHistory(documents, options);
}

std::string FormatReport(const DoctorReport& report) {
  std::string out;
  char line[512];
  out += "bench history (oldest -> newest):\n";
  for (const RunSummary& run : report.runs) {
    std::snprintf(line, sizeof(line), "  %-32s %-12s %-8.8s %-8s %s (%d)\n",
                  run.name.c_str(), run.figure.c_str(),
                  run.git_sha.empty() ? "-" : run.git_sha.c_str(),
                  run.kernel_backend.empty() ? "-"
                                             : run.kernel_backend.c_str(),
                  run.timestamp.empty() ? "-" : run.timestamp.c_str(),
                  run.metrics);
    out += line;
  }
  if (report.skipped_files > 0) {
    std::snprintf(line, sizeof(line), "  (%d non-bench file%s skipped)\n",
                  report.skipped_files,
                  report.skipped_files == 1 ? "" : "s");
    out += line;
  }
  out += "newest run vs median baseline:\n";
  for (const MetricVerdict& v : report.verdicts) {
    if (v.is_new) {
      std::snprintf(line, sizeof(line), "  %-48s %12.4g %12s %8s  new\n",
                    v.series.c_str(), v.value, "-", "-");
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-48s %12.4g %12.4g %+7.1f%%  %s\n", v.series.c_str(),
                    v.value, v.baseline, v.change * 100.0,
                    v.regression ? "REGRESSION" : "ok");
    }
    out += line;
  }
  out += report.ok() ? "doctor: PASS\n" : "doctor: FAIL\n";
  return out;
}

}  // namespace genbase::obs::doctor
